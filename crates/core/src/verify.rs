//! The end-to-end divider verifier: SBIF + modified backward rewriting
//! for vc1, BDDs for vc2.

use crate::error::VerifyError;
use crate::rewrite::{BackwardRewriter, RewriteConfig, RewriteStats};
use crate::sbif::{
    certify_solver_unsat, forward_information_governed, try_divider_sim_words, EquivClasses,
    SbifConfig, SbifGovernor, SbifPrefilter, SbifStats,
};
use crate::spec::divider_spec;
use crate::vc2::{check_vc2_governed, Vc2Config, Vc2Report};
use sbif_analysis::{analyze, AnalysisConfig, AnalysisDb};
use sbif_apint::Int;
use sbif_cec::CecResult;
use sbif_check::CertStats;
use sbif_govern::{CancelToken, Exhausted, GovernConfig, Resource, Verdict, Watchdog};
use sbif_netlist::build::Divider;
use sbif_trace::{MetricsReport, Recorder};
use std::time::{Duration, Instant};

/// Configuration of the full verification flow.
#[derive(Debug, Clone, Copy)]
pub struct VerifierConfig {
    /// Alg. 1 configuration.
    pub sbif: SbifConfig,
    /// Backward rewriting configuration (term limit, tracing).
    pub rewrite: RewriteConfig,
    /// vc2 BDD configuration.
    pub vc2: Vc2Config,
    /// Simulation words (64 patterns each) for candidate detection.
    pub sim_words: usize,
    /// RNG seed for the constrained simulation.
    pub seed: u64,
    /// Skip SBIF entirely (plain backward rewriting — the failing
    /// baseline of Sect. III; expect blow-ups beyond tiny widths).
    pub use_sbif: bool,
    /// Run the static-analysis passes (`sbif-analysis`) before SBIF and
    /// let their facts prefilter the window checks: structurally-decided
    /// pairs merge without a solver and shadow-signature mismatches
    /// refute without one. Disable to force every candidate through a
    /// window solver (the pre-framework behaviour; the resulting classes
    /// are identical either way, only `sbif.windows_solved` moves).
    pub analysis: bool,
    /// Run the cheap simulation smoke check before the symbolic flow
    /// (refutes grossly broken netlists immediately). Disable to force
    /// every refutation through backward rewriting.
    pub smoke_check: bool,
    /// Also check vc2 (`0 ≤ R < D`).
    pub check_vc2: bool,
    /// Replay every UNSAT answer of the flow (SBIF window checks and the
    /// vc1 residual decision) through the independent DRAT checker; the
    /// per-call outcomes are aggregated in the report's certificate
    /// statistics ([`VerificationReport::certificates`]).
    pub certify: bool,
    /// Resource governor (DESIGN.md §16). All-`None` (the default) is
    /// ungoverned: every stage behaves exactly as before, byte for
    /// byte. Setting any budget turns on graceful degradation — typed
    /// [`Exhausted`] outcomes and the engine fallback ladder instead of
    /// hard errors.
    pub govern: GovernConfig,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            sbif: SbifConfig::default(),
            rewrite: RewriteConfig { max_terms: Some(20_000_000), ..RewriteConfig::default() },
            vc2: Vc2Config::default(),
            sim_words: 2,
            seed: 0xD1_71DE5,
            use_sbif: true,
            analysis: true,
            smoke_check: true,
            check_vc2: true,
            certify: false,
            govern: GovernConfig::default(),
        }
    }
}

/// Outcome of the vc1 check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Vc1Outcome {
    /// The specification polynomial reduced to 0: `R⁰ = Q·D + R` holds
    /// for every input satisfying the constraint.
    Proven,
    /// The residual polynomial was non-zero and evaluating it on a
    /// valid input produced a non-zero value: the divider is buggy.
    Refuted {
        /// A dividend value witnessing the bug.
        dividend: Int,
        /// The corresponding divisor value.
        divisor: Int,
    },
    /// The residual was non-zero but no concrete counterexample was
    /// found by sampling — the method is incomplete in this direction
    /// (the paper only claims the `residual = 0 ⇒ correct` direction).
    Inconclusive {
        /// Number of terms of the residual polynomial.
        residual_terms: usize,
    },
    /// A governed budget (or the wall-clock watchdog) stopped vc1
    /// before a decision; only produced when
    /// [`VerifierConfig::govern`] is active.
    Exhausted(Exhausted),
}

/// Everything measured while checking vc1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vc1Report {
    /// Proven / refuted / inconclusive.
    pub outcome: Vc1Outcome,
    /// Alg. 1 statistics (the SBIF columns of Table II).
    pub sbif: SbifStats,
    /// Rewriting statistics (peak terms etc.).
    pub rewrite: RewriteStats,
    /// Wall-clock time of the SBIF phase.
    pub sbif_time: Duration,
    /// Wall-clock time of the rewriting phase.
    pub rewrite_time: Duration,
    /// DRAT certificates of the residual decision's UNSAT answers (all
    /// zero unless [`VerifierConfig::certify`] is set; the SBIF window
    /// certificates live in [`SbifStats::cert`]).
    pub cert: CertStats,
}

/// Result of the bounded SAT fallback that decided vc2 after the BDD
/// traversal exhausted its live-node budget — the second rung of the
/// engine fallback ladder (DESIGN.md §16).
#[derive(Debug, Clone, PartialEq)]
pub struct Vc2Fallback {
    /// `Some(true)`: the miter is UNSAT, vc2 proven by SAT.
    /// `Some(false)`: a model violating `0 ≤ R < D` was found.
    /// `None`: the conflict budget ran out too (`Inconclusive`).
    pub holds: Option<bool>,
    /// Violating input assignment when `holds == Some(false)`, as
    /// `(input name, value)` pairs.
    pub counterexample: Option<Vec<(String, bool)>>,
    /// Conflicts the fallback query spent (deterministic — one
    /// single-threaded solver run).
    pub conflicts: u64,
    /// The configured conflict budget.
    pub budget: u64,
    /// DRAT certificate statistics of the fallback's UNSAT answer
    /// (populated under [`VerifierConfig::certify`]).
    pub cert: CertStats,
}

/// The complete report of a divider verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// The vc1 (value equation) result.
    pub vc1: Vc1Report,
    /// The vc2 (remainder range) result, when enabled.
    pub vc2: Option<Vc2Report>,
    /// The bounded SAT fallback that took over when the governed vc2
    /// BDD traversal exhausted its live-node budget.
    pub vc2_fallback: Option<Vc2Fallback>,
    /// Wall-clock time of the vc2 phase.
    pub vc2_time: Duration,
    /// The three-valued verdict: `Proven` / `Refuted` /
    /// `Inconclusive { exhausted_at }`. Ungoverned runs never produce
    /// `Inconclusive` from a budget (only from the paper's incomplete
    /// residual-sampling direction).
    pub verdict: Verdict,
    /// `true` when the wall-clock watchdog cut any stage short. Such a
    /// run is **not reproducible** and must never be written to the
    /// result cache (DESIGN.md §16 determinism rules).
    pub cancelled: bool,
    /// The deterministic metrics payload of the run: every counter and
    /// gauge the pipeline recorded, frozen by
    /// [`Recorder::finish`]. Byte-identical (via
    /// [`MetricsReport::to_json`]) for every [`SbifConfig::jobs`] value
    /// and across machines — wall-clock and speculation-dependent
    /// numbers live in the explicit `*_time` / [`SbifStats`] fields
    /// instead.
    pub metrics: MetricsReport,
}

impl VerificationReport {
    /// `true` iff both conditions of Definition 1 were proven
    /// (`Inconclusive` is not correct, but not refuted either — check
    /// [`VerificationReport::verdict`] to distinguish).
    pub fn is_correct(&self) -> bool {
        self.verdict.is_proven()
    }

    /// All certificate statistics of the run, merged over the SBIF
    /// window checks, the vc1 residual decision and the vc2 SAT
    /// fallback.
    pub fn certificates(&self) -> CertStats {
        let mut c = self.vc1.cert;
        c.merge(self.vc1.sbif.cert);
        if let Some(f) = &self.vc2_fallback {
            c.merge(f.cert);
        }
        c
    }
}

/// The fully automatic divider verifier of the paper.
///
/// No golden circuit, no hierarchy information: the verifier works on the
/// flat gate-level netlist and the abstract specification of Definition 1.
///
/// # Examples
///
/// ```
/// use sbif_core::verify::DividerVerifier;
/// use sbif_netlist::build::nonrestoring_divider;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let divider = nonrestoring_divider(6);
/// let report = DividerVerifier::new(&divider).verify()?;
/// assert!(report.is_correct());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DividerVerifier<'a> {
    divider: &'a Divider,
    config: VerifierConfig,
    recorder: Recorder,
}

/// Splits the `"bus[idx]"` name of a primary input. Generated and
/// imported dividers always satisfy this; a hand-assembled [`Divider`]
/// (the fault-injection subsystem builds them wholesale) may not, and
/// must surface as an error rather than a panic.
fn input_bus(nl: &sbif_netlist::Netlist, s: sbif_netlist::Sig) -> Result<(&str, u32), VerifyError> {
    let name = nl.name(s).ok_or_else(|| {
        VerifyError::MalformedInterface(format!("primary input {s} is unnamed"))
    })?;
    name.split_once('[')
        .and_then(|(b, rest)| Some((b, rest.strip_suffix(']')?.parse::<u32>().ok()?)))
        .ok_or_else(|| {
            VerifyError::MalformedInterface(format!(
                "primary input {name:?} is not a bus bit"
            ))
        })
}

impl<'a> DividerVerifier<'a> {
    /// A verifier with the default configuration (SBIF on, vc2 on).
    pub fn new(divider: &'a Divider) -> Self {
        DividerVerifier {
            divider,
            config: VerifierConfig::default(),
            recorder: Recorder::new(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: VerifierConfig) -> Self {
        self.config = config;
        self
    }

    /// Uses `recorder` for the run's spans, counters and gauges — attach
    /// sinks to it beforehand to stream the events (`--trace` in the
    /// CLI). Each recorder is meant to observe one `verify()` call: the
    /// deterministic payload accumulates, so reusing one across runs
    /// sums their counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the configured flow.
    ///
    /// # Errors
    ///
    /// [`VerifyError::TermLimitExceeded`] when backward rewriting blows
    /// up (expected without SBIF beyond small widths).
    pub fn verify(&self) -> Result<VerificationReport, VerifyError> {
        let g = self.config.govern;
        let (cancel, _watchdog) = Self::arm_watchdog(&g);
        let verify_span = self.recorder.span("verify");
        let vc1 = self.vc1_governed(cancel.as_ref())?;
        let t0 = Instant::now();
        // A refuted vc1 already settles the verdict; the vc2 BDD
        // traversal can be arbitrarily expensive on a broken netlist
        // (the nice divider structure it relies on is gone), so skip
        // it. A cancelled vc1 means the watchdog already fired — vc2
        // would only return cancelled too.
        let run_vc2 = self.config.check_vc2
            && !matches!(vc1.outcome, Vc1Outcome::Refuted { .. })
            && !matches!(vc1.outcome, Vc1Outcome::Exhausted(e) if !e.deterministic());
        let mut vc2 = None;
        let mut vc2_fallback = None;
        let mut vc2_exhausted: Option<Exhausted> = None;
        let mut vc2_cancelled = false;
        if run_vc2 {
            let span = self.recorder.span("vc2");
            match check_vc2_governed(
                self.divider,
                self.config.vc2,
                g.vc2_live_nodes,
                cancel.as_ref(),
            ) {
                Ok(report) => {
                    self.record_vc2_metrics(&report);
                    vc2 = Some(report);
                }
                Err(ex) if !ex.cancelled => {
                    // Deterministic live-node exhaustion: degrade to one
                    // bounded SAT query of the vc2 property — the next
                    // rung of the fallback ladder.
                    self.recorder.add("govern.vc2_exhausted", 1);
                    self.recorder.add("govern.vc2_live_nodes_spent", ex.live_nodes as u64);
                    let budget = g
                        .vc2_sat_conflicts
                        .unwrap_or(GovernConfig::DEFAULT_VC2_SAT_CONFLICTS);
                    let fb_span = self.recorder.span("vc2-sat");
                    let outcome = sbif_cec::vc2_sat_with(
                        self.divider,
                        sbif_sat::Budget::new().with_conflicts(budget),
                        self.config.certify,
                        cancel.as_ref().map(CancelToken::flag),
                    );
                    fb_span.close();
                    self.recorder.add("govern.vc2_sat_fallback", 1);
                    let conflicts = outcome.stats.solver.conflicts;
                    let cert = outcome.stats.cert;
                    let fallback = match outcome.result {
                        CecResult::Equivalent => Vc2Fallback {
                            holds: Some(true),
                            counterexample: None,
                            conflicts,
                            budget,
                            cert,
                        },
                        CecResult::NotEquivalent(cex) => Vc2Fallback {
                            holds: Some(false),
                            counterexample: Some(cex),
                            conflicts,
                            budget,
                            cert,
                        },
                        CecResult::Unknown => {
                            // Deterministic budget exhaustion wins the
                            // attribution over a racing cancellation.
                            if conflicts >= budget {
                                self.recorder.add("govern.vc2_sat_exhausted", 1);
                                vc2_exhausted = Some(Exhausted {
                                    stage: "vc2-sat",
                                    resource: Resource::SatConflicts,
                                    spent: conflicts,
                                    limit: budget,
                                });
                            } else {
                                vc2_cancelled = true;
                            }
                            Vc2Fallback {
                                holds: None,
                                counterexample: None,
                                conflicts,
                                budget,
                                cert,
                            }
                        }
                    };
                    vc2_fallback = Some(fallback);
                }
                Err(_) => {
                    // Wall-clock cancellation mid-traversal: no
                    // fallback, the whole flow is being torn down.
                    vc2_cancelled = true;
                }
            }
            span.close();
        }
        verify_span.close();

        let refuted = matches!(vc1.outcome, Vc1Outcome::Refuted { .. })
            || vc2.as_ref().is_some_and(|r| !r.holds)
            || vc2_fallback.as_ref().is_some_and(|f| f.holds == Some(false));
        let cancelled = vc1.sbif.cancelled
            || matches!(vc1.outcome, Vc1Outcome::Exhausted(e) if !e.deterministic())
            || vc2_cancelled;
        let wall = |stage: &'static str| Exhausted {
            stage,
            resource: Resource::WallClock,
            spent: g.timeout_ms.unwrap_or(0),
            limit: g.timeout_ms.unwrap_or(0),
        };
        let verdict = if refuted {
            Verdict::Refuted
        } else if let Vc1Outcome::Exhausted(e) = vc1.outcome {
            Verdict::Inconclusive { exhausted_at: e }
        } else if let Vc1Outcome::Inconclusive { residual_terms } = vc1.outcome {
            // The paper's incomplete direction: a non-zero residual that
            // sampling could not refute. Not a budget exhaustion, but
            // still short of a proof.
            Verdict::Inconclusive {
                exhausted_at: Exhausted {
                    stage: "residual",
                    resource: Resource::AnalysisSteps,
                    spent: residual_terms as u64,
                    limit: 0,
                },
            }
        } else if let Some(e) = vc2_exhausted {
            Verdict::Inconclusive { exhausted_at: e }
        } else if vc2_cancelled {
            Verdict::Inconclusive { exhausted_at: wall("vc2") }
        } else {
            Verdict::Proven
        };
        if cancelled {
            // Nondeterministic by nature; cancelled runs are excluded
            // from the byte-identity contract and never cached.
            self.recorder.add("govern.cancelled", 1);
        }
        let metrics = self.recorder.finish();
        Ok(VerificationReport {
            vc1,
            vc2,
            vc2_fallback,
            vc2_time: t0.elapsed(),
            verdict,
            cancelled,
            metrics,
        })
    }

    /// Arms the wall-clock watchdog when the governor configures one.
    /// The returned [`Watchdog`] must stay alive for the duration of
    /// the run (dropping it disarms).
    fn arm_watchdog(g: &GovernConfig) -> (Option<CancelToken>, Option<Watchdog>) {
        match g.timeout_ms {
            Some(ms) => {
                let token = CancelToken::new();
                let wd = Watchdog::arm(Duration::from_millis(ms), &token);
                (Some(token), Some(wd))
            }
            None => (None, None),
        }
    }

    /// Runs only the vc1 check (SBIF + modified backward rewriting),
    /// under the configured governor.
    ///
    /// # Errors
    ///
    /// [`VerifyError::TermLimitExceeded`] on polynomial blow-up (when
    /// no rewrite budget is governed — a governed blow-up becomes
    /// [`Vc1Outcome::Exhausted`] instead).
    pub fn verify_vc1(&self) -> Result<Vc1Report, VerifyError> {
        let (cancel, _watchdog) = Self::arm_watchdog(&self.config.govern);
        self.vc1_governed(cancel.as_ref())
    }

    /// The vc1 flow proper, polling `cancel` at stage boundaries.
    fn vc1_governed(&self, cancel: Option<&CancelToken>) -> Result<Vc1Report, VerifyError> {
        let div = self.divider;
        let g = self.config.govern;
        let _vc1_span = self.recorder.span("vc1");
        let t0 = Instant::now();
        // Cheap smoke refutation: badly broken dividers (mis-wired
        // outputs, wrong operators on hot paths) violate vc1 on random
        // constrained inputs already; catching them here produces an
        // immediate counterexample instead of a polynomial blow-up.
        if self.config.smoke_check {
            let span = self.recorder.span("smoke");
            let cex = self.simulation_counterexample()?;
            span.close();
            if let Some((dividend, divisor)) = cex {
                self.recorder.add("vc1.smoke_refuted", 1);
                return Ok(Vc1Report {
                    outcome: Vc1Outcome::Refuted { dividend, divisor },
                    sbif: SbifStats::default(),
                    rewrite: RewriteStats::default(),
                    sbif_time: t0.elapsed(),
                    rewrite_time: Duration::default(),
                    cert: CertStats::default(),
                });
            }
        }
        // `certify` at the verifier level turns on proof logging in every
        // SAT-answering stage.
        let mut sbif_cfg = self.config.sbif;
        sbif_cfg.certify |= self.config.certify;
        let (classes, sbif_stats) = if self.config.use_sbif {
            // Static analysis first: its facts (cone mask, shadow
            // signatures, structural forms) prefilter the window checks.
            let prefilter = if self.config.analysis {
                let span = self.recorder.span("analysis");
                let db = analyze(&div.netlist, &self.analysis_config()?, &self.recorder);
                span.close();
                // The cone mask stays out of the default flow: skipping
                // dead signals changes which candidate slots the scan
                // spends (generated dividers carry some dead gates that
                // pre-framework runs merged), and the verifier promises
                // classes identical to the prefilter-free run. Callers
                // that want the mask opt in through
                // [`forward_information_with`] + `AnalysisDb::sbif_live_mask`.
                Some(SbifPrefilter {
                    shadow: db.shadow,
                    planes: db.shadow_planes,
                    live: Vec::new(),
                    levels: db.levels,
                })
            } else {
                None
            };
            let span = self.recorder.span("sbif");
            let sim = try_divider_sim_words(div, self.config.seed, self.config.sim_words)
                .map_err(VerifyError::MalformedInterface)?;
            // The governor's conflict budget is accounted commit-side
            // (cumulative absorbed solver conflicts), so the cut lands
            // on the same signal for every `--jobs` value. All-`None`
            // governors poll nothing and change nothing.
            let governor =
                SbifGovernor { conflict_budget: g.sbif_conflicts, cancel: cancel.cloned() };
            let (c, s) = forward_information_governed(
                &div.netlist,
                Some(div.constraint),
                &sim,
                sbif_cfg,
                prefilter.as_ref(),
                &governor,
            );
            span.close();
            (Some(c), s)
        } else {
            (None, SbifStats::default())
        };
        let sbif_time = t0.elapsed();
        if sbif_stats.cancelled {
            // The watchdog fired mid-scan. Deterministic budget cuts
            // (`exhausted`) fall through instead: the classes found so
            // far are sound, and rewriting continues with them — the
            // first rung of the fallback ladder.
            let ms = g.timeout_ms.unwrap_or(0);
            let report = Vc1Report {
                outcome: Vc1Outcome::Exhausted(Exhausted {
                    stage: "sbif",
                    resource: Resource::WallClock,
                    spent: ms,
                    limit: ms,
                }),
                sbif: sbif_stats,
                rewrite: RewriteStats::default(),
                sbif_time,
                rewrite_time: Duration::default(),
                cert: CertStats::default(),
            };
            self.record_vc1_metrics(&report, classes.as_ref());
            return Ok(report);
        }

        let t1 = Instant::now();
        let rewrite_span = self.recorder.span("rewrite");
        let spec = divider_spec(div);
        let mut rw_cfg = self.config.rewrite;
        if let Some(budget) = g.rewrite_terms {
            rw_cfg.max_terms = Some(rw_cfg.max_terms.map_or(budget, |m| m.min(budget)));
        }
        let mut rewriter = BackwardRewriter::new(&div.netlist).with_config(rw_cfg);
        if let Some(token) = cancel {
            rewriter = rewriter.with_interrupt(token.clone());
        }
        if let Some(c) = classes.as_ref() {
            rewriter = rewriter.with_classes(c);
        }
        let run = rewriter.run(spec);
        rewrite_span.close();
        let rewrite_time = t1.elapsed();

        let (outcome, rewrite_stats, cert) = match run {
            Ok((residual, rewrite_stats)) => {
                let (outcome, cert) = if residual.is_zero() {
                    (Vc1Outcome::Proven, CertStats::default())
                } else {
                    // SBIF classes hold under the constraint C, so the
                    // residual only needs to vanish on C-satisfying
                    // inputs. Decide that exactly when the residual's
                    // support is small; otherwise fall back to sampling.
                    let span = self.recorder.span("residual");
                    let decided = self.decide_residual(&residual)?;
                    span.close();
                    decided
                };
                (outcome, rewrite_stats, cert)
            }
            Err(VerifyError::TermLimitExceeded { limit, reached, steps })
                if g.rewrite_terms.is_some() =>
            {
                // Governed blow-up: a typed Inconclusive, not an abort.
                // Rewriting is single-threaded, so `reached` is
                // deterministic and cacheable.
                let stats = RewriteStats {
                    steps,
                    peak_terms: reached,
                    ..RewriteStats::default()
                };
                let e = Exhausted {
                    stage: "rewrite",
                    resource: Resource::RewriteTerms,
                    spent: reached as u64,
                    limit: limit as u64,
                };
                (Vc1Outcome::Exhausted(e), stats, CertStats::default())
            }
            Err(VerifyError::Timeout { .. })
                if cancel.is_some_and(|t| t.is_cancelled()) =>
            {
                let ms = g.timeout_ms.unwrap_or(0);
                let e = Exhausted {
                    stage: "rewrite",
                    resource: Resource::WallClock,
                    spent: ms,
                    limit: ms,
                };
                (Vc1Outcome::Exhausted(e), RewriteStats::default(), CertStats::default())
            }
            Err(e) => return Err(e),
        };
        let report = Vc1Report {
            outcome,
            sbif: sbif_stats,
            rewrite: rewrite_stats,
            sbif_time,
            rewrite_time,
            cert,
        };
        self.record_vc1_metrics(&report, classes.as_ref());
        Ok(report)
    }

    /// The analysis configuration of this run: the divider's constraint
    /// plus shadow stimulus planes from a seed disjoint from the
    /// candidate-detection planes, so prefilter refutations rest on
    /// independent evidence.
    fn analysis_config(&self) -> Result<AnalysisConfig, VerifyError> {
        let shadow = try_divider_sim_words(
            self.divider,
            self.config.seed ^ 0x511A_D0E5,
            self.config.sim_words,
        )
        .map_err(VerifyError::MalformedInterface)?;
        Ok(AnalysisConfig {
            constraint: Some(self.divider.constraint),
            shadow_planes: Some(shadow),
            ..AnalysisConfig::default()
        })
    }

    /// Runs the static-analysis pipeline this verifier's flow would use
    /// and returns the fact database — `sbif-verify --analysis-out`
    /// serializes it via [`AnalysisDb::to_json`]. Deterministic and
    /// independent of [`verify`](Self::verify) (counters go to a
    /// throwaway recorder, so a later verification is not perturbed).
    ///
    /// # Errors
    ///
    /// [`VerifyError::MalformedInterface`] when the divider's input
    /// naming prevents constrained stimulus generation.
    pub fn analysis_db(&self) -> Result<AnalysisDb, VerifyError> {
        Ok(analyze(&self.divider.netlist, &self.analysis_config()?, &Recorder::new()))
    }

    /// Records the deterministic vc1 metrics. Wall-clock numbers
    /// (`sat_micros`) are intentionally absent — they vary with the
    /// machine, and the metrics payload must not. The speculation
    /// counters *are* recorded: under the level-barrier engine the lane
    /// schedule is a pure function of `(netlist, config)`, so attempts,
    /// hits, and solver inits are byte-identical at any `--jobs`.
    fn record_vc1_metrics(&self, report: &Vc1Report, classes: Option<&EquivClasses>) {
        let r = &self.recorder;
        let s = &report.sbif;
        r.add("sbif.candidates", s.candidates as u64);
        r.add("sbif.sat_checks", s.sat_checks as u64);
        r.add("sbif.windows_solved", s.windows_solved as u64);
        r.add("analysis.prefilter_proven", s.prefilter_proven as u64);
        r.add("analysis.prefilter_refuted", s.prefilter_refuted as u64);
        r.add("sbif.proven", s.proven as u64);
        r.add("sbif.refuted", s.refuted as u64);
        r.add("sbif.unknown", s.unknown as u64);
        r.add("sbif.refinements", s.refinements as u64);
        r.add("sbif.level.count", s.levels as u64);
        r.add("sbif.level.spec_attempts", s.spec_attempts as u64);
        r.add("sbif.level.spec_hits", s.spec_hits as u64);
        if let Some(permille) = (s.spec_hits * 1000).checked_div(s.spec_attempts) {
            r.gauge_max("sbif.level.spec_hit_permille", permille as u64);
        }
        r.add("sbif.batch.solver_inits", s.solver_inits as u64);
        r.add("sbif.batch.checks", s.batch_checks as u64);
        r.add("sbif.sat.decisions", s.solver.decisions);
        r.add("sbif.sat.conflicts", s.solver.conflicts);
        r.add("sbif.sat.propagations", s.solver.propagations);
        r.add("sbif.sat.restarts", s.solver.restarts);
        r.add("sbif.sat.learnts", s.solver.learnts);
        r.add("sbif.sat.deleted", s.solver.deleted);
        // Governor counters are recorded only on exhaustion events, so
        // a governed run that never trips a budget stays byte-identical
        // to the ungoverned run (which makes normalizing the governor
        // out of the cache fingerprint sound).
        if s.exhausted {
            r.add("govern.sbif_exhausted", 1);
            r.add("govern.sbif_conflicts_spent", s.solver.conflicts);
        }
        if let Vc1Outcome::Exhausted(e) = &report.outcome {
            if e.deterministic() {
                r.add(&format!("govern.{}_exhausted", e.stage), 1);
                r.add(&format!("govern.{}_spent", e.stage), e.spent);
            }
        }
        if let Some(c) = classes {
            r.add("sbif.merges", c.num_merges() as u64);
            for (size, count) in c.size_histogram() {
                r.add(&format!("sbif.class_size.{size}"), count as u64);
            }
        }
        let w = &report.rewrite;
        r.add("rewrite.steps", w.steps as u64);
        r.add("rewrite.block_substitutions", w.block_substitutions as u64);
        r.add("rewrite.total_terms", w.total_terms);
        r.gauge_max("rewrite.peak_terms", w.peak_terms as u64);
        r.gauge_max("rewrite.final_terms", w.final_terms as u64);
        let mut cert = report.cert;
        cert.merge(s.cert);
        if cert.checked > 0 {
            r.add("cert.checked", u64::from(cert.checked));
            r.add("cert.rejected", u64::from(cert.rejected));
            r.add("cert.steps_logged", cert.steps_logged);
            r.add("cert.steps_used", cert.steps_used);
            r.add("cert.drat_bytes", cert.drat_bytes);
            // Integer permille of used steps: deterministic (no float
            // rounding in the payload), 1000 when nothing was logged.
            let permille = (cert.steps_used * 1000)
                .checked_div(cert.steps_logged)
                .unwrap_or(1000);
            r.gauge_max("cert.used_permille", permille);
        }
    }

    /// Records the deterministic vc2 metrics (BDD table sizes and the
    /// backward-traversal counters).
    fn record_vc2_metrics(&self, report: &Vc2Report) {
        let r = &self.recorder;
        r.add("vc2.composed", report.wpc_stats.composed as u64);
        r.add("vc2.reorders", report.wpc_stats.reorders as u64);
        r.gauge_max("vc2.peak_live_nodes", report.peak_nodes as u64);
        r.gauge_max("vc2.final_nodes", report.final_nodes as u64);
        r.gauge_max("vc2.unique_entries", report.unique_entries as u64);
        r.gauge_max("vc2.cache_entries", report.cache_entries as u64);
        r.gauge_max("vc2.wpc_final_size", report.wpc_stats.final_size as u64);
    }

    /// Simulates constrained random inputs and checks vc1 numerically;
    /// returns the first violating `(dividend, divisor)` pair, if any.
    fn simulation_counterexample(&self) -> Result<Option<(Int, Int)>, VerifyError> {
        let div = self.divider;
        let words = try_divider_sim_words(div, self.config.seed ^ 0xFACE, 1)
            .map_err(VerifyError::MalformedInterface)?;
        let plane: Vec<u64> = words.iter().map(|v| v[0]).collect();
        let vals = div.netlist.simulate64(&plane);
        let word_value = |w: &sbif_netlist::Word, k: u32| -> Int {
            let mut acc = Int::zero();
            for (i, &s) in w.iter().enumerate() {
                if (vals[s.index()] >> k) & 1 == 1 {
                    acc += Int::pow2(i as u32);
                }
            }
            acc
        };
        let wbits = div.remainder.len() as u32;
        for k in 0..64 {
            let q = word_value(&div.quotient, k);
            let d = word_value(&div.divisor, k);
            let r0 = word_value(&div.dividend, k);
            let mut r = word_value(&div.remainder, k);
            // two's complement sign
            if r.magnitude_bit(wbits - 1) {
                r -= Int::pow2(wbits);
            }
            if &(&q * &d) + &r != r0 {
                return Ok(Some((r0, d)));
            }
        }
        Ok(None)
    }

    /// Decides whether a non-zero residual still vanishes on every input
    /// satisfying `C` (then vc1 is proven). The residual depends only on
    /// its support variables — all primary inputs after a complete run —
    /// so enumerate their assignments; for each that makes the residual
    /// non-zero, ask SAT whether it extends to a C-satisfying input.
    ///
    /// Under [`VerifierConfig::certify`], each UNSAT answer (assignment
    /// does not extend to a valid input) is DRAT-checked; the returned
    /// statistics cover every such call. The incremental proof log stays
    /// valid across the calls: learnt clauses are consequences of the
    /// formula alone, and each call's refutation is closed by its own
    /// failed-assumption units.
    fn decide_residual(
        &self,
        residual: &sbif_poly::Poly,
    ) -> Result<(Vc1Outcome, CertStats), VerifyError> {
        use sbif_sat::{NetlistEncoder, SolveResult, Solver};
        let div = self.divider;
        let mut cert = CertStats::default();
        let support = residual.support();
        let all_inputs = support
            .iter()
            .all(|v| div.netlist.gate(sbif_netlist::Sig(v.0)).is_input());
        if support.len() > 16 || !all_inputs {
            return Ok((self.find_counterexample(residual)?, cert));
        }
        let mut solver = Solver::new();
        if self.config.certify {
            solver.enable_proof_log();
        }
        let mut enc = NetlistEncoder::new(&div.netlist);
        enc.encode_cone(&mut solver, &div.netlist, div.constraint);
        let lc = enc.lit(&mut solver, div.constraint);
        solver.add_clause([lc]);
        let lits: Vec<_> = support
            .iter()
            .map(|v| enc.lit(&mut solver, sbif_netlist::Sig(v.0)))
            .collect();
        for bits in 0u64..(1 << support.len()) {
            let asg = |v: sbif_poly::Var| {
                support
                    .iter()
                    .position(|&s| s == v)
                    .map(|i| (bits >> i) & 1 == 1)
                    .unwrap_or(false)
            };
            if residual.eval(asg).is_zero() {
                continue;
            }
            let assumptions: Vec<_> = lits
                .iter()
                .enumerate()
                .map(|(i, &l)| if (bits >> i) & 1 == 1 { l } else { !l })
                .collect();
            let result = solver.solve_assuming(&assumptions);
            if result == SolveResult::Unsat && self.config.certify {
                cert.record(&certify_solver_unsat(&solver));
            }
            if result == SolveResult::Sat {
                // A valid input on which SP ≠ 0: reconstruct the values.
                let mut dividend = Int::zero();
                let mut divisor = Int::zero();
                for &s in div.netlist.inputs() {
                    let val = enc
                        .peek_lit(s)
                        .and_then(|l| solver.model_lit(l))
                        .unwrap_or(false);
                    if !val {
                        continue;
                    }
                    let (bus, idx) = input_bus(&div.netlist, s)?;
                    match bus {
                        "r0" => dividend += Int::pow2(idx),
                        _ => divisor += Int::pow2(idx),
                    }
                }
                return Ok((Vc1Outcome::Refuted { dividend, divisor }, cert));
            }
        }
        // No C-satisfying input makes the residual non-zero: proven.
        Ok((Vc1Outcome::Proven, cert))
    }

    /// Samples valid inputs and evaluates the residual polynomial; any
    /// non-zero value is a definite counterexample to vc1.
    fn find_counterexample(&self, residual: &sbif_poly::Poly) -> Result<Vc1Outcome, VerifyError> {
        let div = self.divider;
        let words = try_divider_sim_words(div, self.config.seed ^ 0x5eed, 4)
            .map_err(VerifyError::MalformedInterface)?;
        let inputs = div.netlist.inputs();
        #[allow(clippy::needless_range_loop)] // w indexes every input's word list
        for w in 0..words.first().map_or(0, |v| v.len()) {
            for k in 0..64 {
                let bit_of = |sig_idx: usize| -> bool {
                    inputs
                        .iter()
                        .position(|s| s.index() == sig_idx)
                        .map(|pos| (words[pos][w] >> k) & 1 == 1)
                        .unwrap_or(false)
                };
                let value = residual.eval(|v| bit_of(v.index()));
                if !value.is_zero() {
                    // Reconstruct the concrete dividend/divisor.
                    let mut dividend = Int::zero();
                    let mut divisor = Int::zero();
                    for (pos, &s) in inputs.iter().enumerate() {
                        if (words[pos][w] >> k) & 1 == 0 {
                            continue;
                        }
                        let (bus, idx) = input_bus(&div.netlist, s)?;
                        match bus {
                            "r0" => dividend += Int::pow2(idx),
                            _ => divisor += Int::pow2(idx),
                        }
                    }
                    return Ok(Vc1Outcome::Refuted { dividend, divisor });
                }
            }
        }
        Ok(Vc1Outcome::Inconclusive { residual_terms: residual.num_terms() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbif_netlist::build::nonrestoring_divider;
    use sbif_netlist::{BinOp, Gate, Netlist, Sig};

    #[test]
    fn small_dividers_verify_end_to_end() {
        for n in [2usize, 3, 4] {
            let div = nonrestoring_divider(n);
            let report = DividerVerifier::new(&div).verify().expect("no blow-up");
            assert!(report.is_correct(), "n={n}: {:?}", report.vc1.outcome);
            if n > 2 {
                assert!(report.vc1.sbif.proven > 0, "SBIF must find classes");
            }
        }
    }

    #[test]
    fn sbif_keeps_peaks_small() {
        let n = 6;
        let div = nonrestoring_divider(n);
        let with = DividerVerifier::new(&div).verify_vc1().expect("fits");
        let without_cfg = VerifierConfig {
            use_sbif: false,
            rewrite: RewriteConfig { max_terms: Some(2_000_000), ..RewriteConfig::default() },
            ..VerifierConfig::default()
        };
        let without = DividerVerifier::new(&div).with_config(without_cfg).verify_vc1();
        let with_peak = with.rewrite.peak_terms;
        match without {
            Ok(r) => assert!(
                r.rewrite.peak_terms > 10 * with_peak,
                "no-SBIF peak {} vs SBIF peak {}",
                r.rewrite.peak_terms,
                with_peak
            ),
            Err(VerifyError::TermLimitExceeded { .. }) => {} // even better
            Err(e) => panic!("unexpected error {e}"),
        }
        assert_eq!(with.outcome, Vc1Outcome::Proven);
    }

    /// Injects a bug by flipping one gate operator and re-running the
    /// flow: the report must not claim correctness.
    fn break_gate(div: &Divider, victim: Sig) -> Option<Divider> {
        let mut broken = div.clone();
        let mut nl = Netlist::new();
        let mut map = Vec::new();
        for s in div.netlist.signals() {
            let g = div.netlist.gate(s).clone();
            let remapped = match g {
                Gate::Input => {
                    let name = div.netlist.name(s).expect("named").to_string();
                    nl.input(&name)
                }
                Gate::Const(v) => nl.push_gate(Gate::Const(v)),
                Gate::Unary(op, a) => nl.push_gate(Gate::Unary(op, map[a.index()])),
                Gate::Binary(op, a, b) => {
                    let op = if s == victim {
                        match op {
                            BinOp::And => BinOp::Or,
                            BinOp::Or => BinOp::And,
                            BinOp::Xor => BinOp::Xnor,
                            BinOp::Xnor => BinOp::Xor,
                            other => other,
                        }
                    } else {
                        op
                    };
                    nl.push_gate(Gate::Binary(op, map[a.index()], map[b.index()]))
                }
            };
            map.push(remapped);
        }
        for (name, s) in div.netlist.outputs() {
            nl.add_output(name, map[s.index()]);
        }
        broken.netlist = nl;
        broken.dividend = div.dividend.iter().map(|s| map[s.index()]).collect();
        broken.divisor = div.divisor.iter().map(|s| map[s.index()]).collect();
        broken.quotient = div.quotient.iter().map(|s| map[s.index()]).collect();
        broken.remainder = div.remainder.iter().map(|s| map[s.index()]).collect();
        broken.stage_signs = div.stage_signs.iter().map(|s| map[s.index()]).collect();
        broken.constraint = map[div.constraint.index()];
        Some(broken)
    }

    #[test]
    fn smoke_check_refutes_instantly() {
        // Swap two remainder bits: the simulation pre-check must refute
        // without entering SBIF or rewriting.
        let div = nonrestoring_divider(5);
        let mut broken = div.clone();
        let mut bits: Vec<Sig> = broken.remainder.iter().copied().collect();
        bits.swap(0, 1);
        broken.remainder = sbif_netlist::Word::new(bits);
        let report = DividerVerifier::new(&broken).verify().expect("instant");
        assert!(matches!(report.vc1.outcome, Vc1Outcome::Refuted { .. }));
        assert_eq!(report.vc1.rewrite.steps, 0, "must not reach rewriting");
        assert!(report.vc2.is_none(), "vc2 skipped after refutation");
    }

    #[test]
    fn injected_bugs_are_caught() {
        let div = nonrestoring_divider(3);
        // Flip a handful of binary gates spread over the circuit.
        let victims: Vec<Sig> = div
            .netlist
            .signals()
            .filter(|&s| matches!(div.netlist.gate(s), Gate::Binary(..)))
            .step_by(17)
            .take(6)
            .collect();
        let mut caught = 0;
        let mut checked = 0;
        for victim in victims {
            let broken = break_gate(&div, victim).expect("rebuild");
            // Skip mutants that do not change the I/O behaviour on valid
            // inputs (the flipped gate may be redundant there).
            let mut differs = false;
            'outer: for dv in 1u64..4 {
                for r0 in 0..(dv << 2) {
                    let a = div.netlist.eval_u64(&[("r0", r0), ("d", dv)]);
                    let b = broken.netlist.eval_u64(&[("r0", r0), ("d", dv)]);
                    if a["q"] != b["q"] || a["r"] != b["r"] {
                        differs = true;
                        break 'outer;
                    }
                }
            }
            if !differs {
                continue;
            }
            checked += 1;
            let report = DividerVerifier::new(&broken).verify().expect("small");
            if !report.is_correct() {
                caught += 1;
            }
        }
        assert!(checked > 0, "no behaviour-changing mutants generated");
        assert_eq!(caught, checked, "every real bug must be caught");
    }

    /// A hand-assembled divider whose inputs are not `r0[i]`/`d[i]` bus
    /// bits must be reported as malformed, not crash the process — the
    /// fault-injection campaign feeds such netlists on purpose.
    #[test]
    fn non_bus_input_names_error_instead_of_panicking() {
        let mut div = nonrestoring_divider(3);
        let s = div.netlist.inputs()[0];
        div.netlist.set_name(s, "weird");
        let err = DividerVerifier::new(&div).verify().expect_err("malformed");
        assert!(matches!(err, VerifyError::MalformedInterface(_)), "{err}");
        assert!(err.to_string().contains("weird"));
        // The symbolic path (smoke check disabled) must error the same way.
        let cfg = VerifierConfig { smoke_check: false, ..VerifierConfig::default() };
        let err = DividerVerifier::new(&div).with_config(cfg).verify().expect_err("malformed");
        assert!(matches!(err, VerifyError::MalformedInterface(_)), "{err}");
    }

    #[test]
    fn unnamed_inputs_error_instead_of_panicking() {
        // `push_gate(Gate::Input)` creates unnamed inputs — legal for a
        // raw netlist, malformed as a divider interface.
        let mut nl = Netlist::new();
        for _ in 0..6 {
            nl.push_gate(Gate::Input);
        }
        let ins = nl.inputs().to_vec();
        let q = nl.and(ins[0], ins[1]);
        nl.add_output("q[0]", q);
        let div = Divider {
            netlist: nl,
            n: 3,
            kind: sbif_netlist::build::DividerKind::Imported,
            dividend: sbif_netlist::Word::new(ins[0..4].to_vec()),
            divisor: sbif_netlist::Word::new(ins[4..6].to_vec()),
            quotient: sbif_netlist::Word::new(vec![q; 3]),
            remainder: sbif_netlist::Word::new(vec![q; 5]),
            stage_signs: Vec::new(),
            constraint: ins[0],
        };
        let err = DividerVerifier::new(&div).verify_vc1().expect_err("malformed");
        assert!(matches!(err, VerifyError::MalformedInterface(_)), "{err}");
        assert!(err.to_string().contains("unnamed"));
    }

    #[test]
    fn refutation_produces_concrete_counterexample() {
        // Break a quotient gate so vc1 itself fails.
        let div = nonrestoring_divider(3);
        let q_gate = div.quotient[1];
        let broken = break_gate(&div, q_gate).expect("rebuild");
        // Force the refutation through the *symbolic* path (residual
        // decision), not the simulation smoke check.
        let report = DividerVerifier::new(&broken)
            .with_config(VerifierConfig {
                check_vc2: false,
                smoke_check: false,
                ..Default::default()
            })
            .verify()
            .expect("small");
        match &report.vc1.outcome {
            Vc1Outcome::Refuted { dividend, divisor } => {
                // Replay through simulation.
                let r0: u64 = u64::try_from(dividend).unwrap_or(0);
                let dv: u64 = u64::try_from(divisor).unwrap_or(0);
                let out = broken.netlist.eval_u64(&[("r0", r0), ("d", dv)]);
                let w = 2 * div.n - 1;
                let r_signed = {
                    let r = out["r"];
                    if r >> (w - 1) & 1 == 1 {
                        r as i64 - (1 << w)
                    } else {
                        r as i64
                    }
                };
                assert_ne!(
                    out["q"] as i64 * dv as i64 + r_signed,
                    r0 as i64,
                    "counterexample must violate vc1"
                );
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }
}
