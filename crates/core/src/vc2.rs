//! Verification condition vc2: `0 ≤ R < D` (Sect. V of the paper).
//!
//! Backward rewriting cannot express `0 ≤ R < D` as a polynomial of
//! manageable size, but the predicate has a linear-size BDD under an
//! interleaved variable order. The check:
//!
//! 1. build the BDD of `0 ≤ R < D` over the output variables,
//! 2. substitute the gates backwards (weakest precondition `WPC`),
//! 3. verify that the input constraint implies `WPC`, i.e. the BDD of
//!    `¬C ∨ WPC` is the constant 1.

use sbif_bdd::{
    bdd_of_signal, interleaved_fanin_order, remainder_in_range, weakest_precondition_budgeted,
    BddManager, BddWord, WpcLimits, WpcStats,
};
use sbif_netlist::build::Divider;

/// Configuration of the BDD-based vc2 check.
#[derive(Debug, Clone, Copy)]
pub struct Vc2Config {
    /// Initial live-node threshold that triggers dynamic (symmetric)
    /// sifting; doubles after every pass.
    pub reorder_threshold: usize,
    /// Expected live-node population the manager's unique and computed
    /// tables are pre-sized for, so the hot phase of the backward
    /// traversal never pays for incremental rehashing. Feed this from
    /// the `vc2.peak_live_nodes` trace gauge of a previous run of the
    /// same divider family (DESIGN.md §13); the default covers the
    /// small widths used in tests.
    pub table_capacity: usize,
}

impl Default for Vc2Config {
    fn default() -> Self {
        // The threshold is tuned against *live* node counts: the engine's
        // adaptive GC keeps garbage out of the population that triggers
        // sifting, so it sits far below the old garbage-inflated default
        // (at n = 32 this is the difference between a 122k and a 396k
        // node peak — see EXPERIMENTS.md Table II).
        Vc2Config { reorder_threshold: 4096, table_capacity: 1 << 14 }
    }
}

/// Result of the vc2 check.
#[derive(Debug, Clone, PartialEq)]
pub struct Vc2Report {
    /// Whether `C → WPC(0 ≤ R < D)` is a tautology.
    pub holds: bool,
    /// Peak number of live BDD nodes (Table II, col. 8), counted
    /// post-complement-edges: a function and its negation share every
    /// node, so this runs roughly half the node count of an engine
    /// without complement edges. Emitted as the `vc2.peak_live_nodes`
    /// gauge.
    pub peak_nodes: usize,
    /// Live BDD nodes when the check finished (≤ `peak_nodes`).
    pub final_nodes: usize,
    /// Entries in the manager's unique table at the end of the check.
    pub unique_entries: usize,
    /// Entries in the manager's computed-table (operation cache) at the
    /// end of the check.
    pub cache_entries: usize,
    /// Statistics of the backward traversal.
    pub wpc_stats: WpcStats,
    /// When `holds` is false: a valid input violating the remainder
    /// condition, as `(input name, value)` bits (unlisted inputs are
    /// don't-cares).
    pub counterexample: Option<Vec<(String, bool)>>,
}

/// Checks vc2 for a divider.
///
/// # Examples
///
/// ```
/// use sbif_core::vc2::{check_vc2, Vc2Config};
/// use sbif_netlist::build::nonrestoring_divider;
///
/// let div = nonrestoring_divider(3);
/// let report = check_vc2(&div, Vc2Config::default());
/// assert!(report.holds);
/// ```
pub fn check_vc2(div: &Divider, cfg: Vc2Config) -> Vc2Report {
    check_vc2_governed(div, cfg, None, None).expect("ungoverned vc2 always completes")
}

/// How far a governed vc2 BDD traversal got before giving up (the
/// `Err` side of [`check_vc2_governed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vc2Exhausted {
    /// `true` when the wall-clock watchdog cancelled the traversal
    /// (non-reproducible); `false` when the live-node budget tripped
    /// (deterministic — the traversal is sequential).
    pub cancelled: bool,
    /// Live nodes when the traversal stopped.
    pub live_nodes: usize,
    /// Peak live nodes over the partial traversal.
    pub peak_nodes: usize,
    /// Partial traversal statistics (`composed` tells how far it got).
    pub wpc_stats: WpcStats,
}

/// [`check_vc2`] under a live-node budget and/or a cancel token. On
/// exhaustion the caller is expected to degrade to the bounded SAT
/// fallback (`sbif_cec::vc2_sat`) — see the fallback ladder in
/// DESIGN.md §16.
pub fn check_vc2_governed(
    div: &Divider,
    cfg: Vc2Config,
    max_live_nodes: Option<usize>,
    cancel: Option<&sbif_govern::CancelToken>,
) -> Result<Vc2Report, Vc2Exhausted> {
    let nl = &div.netlist;
    let mut m = BddManager::with_table_capacity(cfg.table_capacity);
    m.reorder_threshold = cfg.reorder_threshold;
    m.set_order(&interleaved_fanin_order(nl, &div.remainder, &div.divisor));

    let r = BddWord::from(&div.remainder);
    let d = BddWord::from(&div.divisor);
    let predicate = remainder_in_range(&mut m, &r, &d);
    let limits = WpcLimits { max_live_nodes, interrupt: cancel.map(|t| t.flag()) };
    let (wpc, wpc_stats) = weakest_precondition_budgeted(&mut m, nl, predicate, &limits);
    let Some(wpc) = wpc else {
        // A deterministic budget overrun wins the attribution over a
        // racing cancellation (mirrors the SBIF commit loop).
        let over = max_live_nodes.is_some_and(|mx| m.live_nodes() > mx);
        return Err(Vc2Exhausted {
            cancelled: !over,
            live_nodes: m.live_nodes(),
            peak_nodes: m.peak_nodes,
            wpc_stats,
        });
    };
    let c = bdd_of_signal(&mut m, nl, div.constraint);
    let holds = m.implies_taut(c, wpc);
    let counterexample = if holds {
        None
    } else {
        let nw = m.not(wpc);
        let bad = m.and(c, nw);
        m.one_sat(bad).map(|path| {
            path.into_iter()
                .filter_map(|(v, val)| {
                    let sig = sbif_netlist::Sig(v);
                    nl.name(sig).map(|n| (n.to_string(), val))
                })
                .collect()
        })
    };
    Ok(Vc2Report {
        holds,
        peak_nodes: m.peak_nodes,
        final_nodes: m.live_nodes(),
        unique_entries: m.unique_len(),
        cache_entries: m.cache_len(),
        wpc_stats,
        counterexample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbif_netlist::build::{nonrestoring_divider, restoring_divider};
    use sbif_netlist::{Netlist, Sig};

    #[test]
    fn vc2_holds_for_correct_dividers() {
        for n in [2usize, 3, 4, 6] {
            let div = nonrestoring_divider(n);
            let report = check_vc2(&div, Vc2Config::default());
            assert!(report.holds, "n={n}");
            assert!(report.counterexample.is_none());
            assert!(report.peak_nodes > 0);
        }
        let div = restoring_divider(4);
        assert!(check_vc2(&div, Vc2Config::default()).holds);
    }

    #[test]
    fn vc2_fails_with_counterexample_for_broken_divider() {
        // Break the remainder: swap two of its output bits.
        let div = nonrestoring_divider(3);
        let mut broken = div.clone();
        let mut bits: Vec<Sig> = broken.remainder.iter().copied().collect();
        bits.swap(0, 1);
        broken.remainder = sbif_netlist::Word::new(bits);
        let report = check_vc2(&broken, Vc2Config::default());
        assert!(!report.holds);
        let cex = report.counterexample.expect("counterexample available");
        // Replay: the counterexample must be a valid input whose swapped
        // remainder leaves [0, D).
        let nl = &div.netlist;
        let inputs: Vec<bool> = nl
            .inputs()
            .iter()
            .map(|&s| {
                let name = nl.name(s).expect("named");
                cex.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(false)
            })
            .collect();
        let vals = nl.simulate_bool(&inputs);
        assert!(vals[div.constraint.index()], "cex must satisfy C");
        // swapped remainder value
        let rbits: Vec<bool> =
            broken.remainder.iter().map(|&s| vals[s.index()]).collect();
        let dv: u64 = div
            .divisor
            .iter()
            .enumerate()
            .map(|(i, &s)| (vals[s.index()] as u64) << i)
            .sum();
        let w = rbits.len();
        let rv: i64 = rbits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let weight = 1i64 << i;
                if i == w - 1 {
                    -(b as i64) * weight
                } else {
                    (b as i64) * weight
                }
            })
            .sum();
        assert!(rv < 0 || rv >= dv as i64, "cex does not violate vc2: r={rv} d={dv}");
    }

    #[test]
    fn vc2_with_aggressive_reordering() {
        // A tiny threshold forces many sifting passes; the result must
        // not change.
        let div = nonrestoring_divider(4);
        let report = check_vc2(&div, Vc2Config { reorder_threshold: 256, ..Vc2Config::default() });
        assert!(report.holds);
        assert!(report.wpc_stats.reorders > 0, "expected reordering to trigger");
    }

    #[test]
    fn governed_vc2_exhausts_on_node_budget_and_cancel() {
        let div = nonrestoring_divider(4);
        // A 1-node ceiling trips immediately and deterministically.
        let err = check_vc2_governed(&div, Vc2Config::default(), Some(1), None)
            .expect_err("1-node budget must exhaust");
        assert!(!err.cancelled, "budget overrun, not cancellation");
        assert!(err.live_nodes > 1);
        // A pre-cancelled token stops the traversal and is attributed as
        // a cancellation (no deterministic budget in play).
        let token = sbif_govern::CancelToken::new();
        token.cancel();
        let err = check_vc2_governed(&div, Vc2Config::default(), None, Some(&token))
            .expect_err("cancelled token must stop the traversal");
        assert!(err.cancelled);
        // Ample budget reproduces the ungoverned result exactly.
        let ungoverned = check_vc2(&div, Vc2Config::default());
        let governed = check_vc2_governed(&div, Vc2Config::default(), Some(1 << 20), None)
            .expect("ample budget completes");
        assert_eq!(governed, ungoverned);
    }

    #[test]
    fn malformed_divider_without_outputs_is_handled() {
        // A divider whose remainder word points at constants still goes
        // through the machinery (predicate over constants).
        let mut nl = Netlist::new();
        let z = nl.const0();
        let div = Divider {
            netlist: {
                let mut n2 = nl.clone();
                let _ = n2.input("r0[0]");
                n2
            },
            n: 2,
            kind: sbif_netlist::build::DividerKind::NonRestoring,
            dividend: sbif_netlist::Word::new(vec![z; 3]),
            divisor: sbif_netlist::Word::new(vec![z; 2]),
            quotient: sbif_netlist::Word::new(vec![z; 2]),
            remainder: sbif_netlist::Word::new(vec![z; 3]),
            stage_signs: vec![z, z],
            constraint: z,
        };
        // R = 0, D = 0: 0 ≤ R < D is false, but C (= constant 0) implies
        // anything — vc2 vacuously holds.
        let report = check_vc2(&div, Vc2Config::default());
        assert!(report.holds);
    }
}
