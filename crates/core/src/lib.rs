//! SCA backward rewriting with SAT Based Information Forwarding — the
//! paper's contribution.
//!
//! The crate implements the full verification flow of *"Symbolic Computer
//! Algebra and SAT Based Information Forwarding for Fully Automatic
//! Divider Verification"* (Scholl & Konrad, DAC 2020):
//!
//! * [`gatepoly`] — gate polynomials for pseudo-Boolean backward
//!   rewriting (Sect. II-A);
//! * [`spec`] — specification polynomials: the divider specification
//!   `SP = Q·D + R − R⁰` of Sect. III, the signed-adder polynomials of
//!   Lemma 2, and a multiplier specification for contrast experiments;
//! * [`blocks`] — detection of half/full-adder atomic blocks (the
//!   restriction of \[10\], \[11\] the paper's footnote describes);
//! * [`rewrite`] — the backward rewriting engine with per-step size
//!   statistics and term limits (Table I, Fig. 3, Fig. 4), including the
//!   *modified* backward rewriting of Alg. 2 that substitutes class
//!   representatives as early as possible;
//! * [`sbif`] — SAT Based Information Forwarding (Alg. 1): constrained
//!   random simulation for candidates, a polarity union-find over
//!   signals, and windowed SAT equivalence checks that forward already
//!   proven information;
//! * [`vc2`] — the BDD-based proof of `0 ≤ R < D` (Sect. V);
//! * [`verify`] — the end-to-end [`DividerVerifier`](verify::DividerVerifier).
//!
//! # Examples
//!
//! ```
//! use sbif_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let divider = nonrestoring_divider(4);
//! let report = DividerVerifier::new(&divider).verify()?;
//! assert!(report.is_correct());
//! println!("{} equivalences, peak {} terms", report.vc1.sbif.proven, report.vc1.rewrite.peak_terms);
//! # Ok(())
//! # }
//! ```

pub mod blocks;
pub mod error;
pub mod gatepoly;
pub mod rewrite;
pub mod sbif;
pub mod spec;
pub mod vc2;
pub mod verify;

pub use error::VerifyError;

/// Convenient imports for the verification flow.
pub mod prelude {
    pub use crate::error::VerifyError;
    pub use crate::rewrite::{BackwardRewriter, RewriteConfig, RewriteStats};
    pub use crate::sbif::{EquivClasses, SbifConfig, SbifStats};
    pub use crate::vc2::{check_vc2, Vc2Config, Vc2Report};
    pub use crate::verify::{DividerVerifier, VerificationReport, VerifierConfig, Vc1Outcome};
    pub use sbif_netlist::build::nonrestoring_divider;
}
