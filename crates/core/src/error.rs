//! Error types of the verification flow.

use std::fmt;

/// Errors that abort a verification run (as opposed to a *negative
/// verification result*, which is reported, not thrown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Backward rewriting exceeded the configured term limit — the
    /// "MEMOUT" entries of the paper's Table I.
    TermLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// The number of terms at the moment rewriting gave up.
        reached: usize,
        /// Substitution steps performed before the blow-up.
        steps: usize,
    },
    /// A wall-clock budget was exhausted — the "TO" entries of Table II.
    Timeout {
        /// The phase that timed out (e.g. `"sbif"`, `"rewrite"`, `"vc2"`).
        phase: &'static str,
    },
    /// The netlist does not have the divider interface the flow expects.
    MalformedInterface(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TermLimitExceeded { limit, reached, steps } => write!(
                f,
                "polynomial blow-up: {reached} terms after {steps} substitutions \
                 (limit {limit})"
            ),
            VerifyError::Timeout { phase } => write!(f, "budget exhausted during {phase}"),
            VerifyError::MalformedInterface(msg) => {
                write!(f, "netlist lacks the divider interface: {msg}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VerifyError::TermLimitExceeded { limit: 10, reached: 11, steps: 3 };
        assert!(e.to_string().contains("blow-up"));
        assert!(e.to_string().contains("11"));
        let e = VerifyError::Timeout { phase: "sbif" };
        assert!(e.to_string().contains("sbif"));
        let e = VerifyError::MalformedInterface("no q bus".into());
        assert!(e.to_string().contains("no q bus"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(VerifyError::Timeout { phase: "vc2" });
        assert!(e.to_string().contains("vc2"));
    }
}
