//! Detection of half/full-adder atomic blocks.
//!
//! The paper's experiments "employ heuristics for detecting atomic blocks
//! (restricted to half and full adders) and for finding a good
//! substitution order \[10\], \[11\]". This module implements the structural
//! detection; the substitution ordering derived from it lives in
//! [`crate::rewrite`].

use sbif_netlist::{BinOp, Gate, Netlist, Sig};

/// The kind of a detected atomic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `sum = a ⊕ b`, `carry = a ∧ b`.
    HalfAdder,
    /// `sum = (a ⊕ b) ⊕ cin`, `carry = (a ∧ b) ∨ ((a ⊕ b) ∧ cin)`.
    FullAdder,
}

/// A detected adder block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicBlock {
    /// Half or full adder.
    pub kind: BlockKind,
    /// The block inputs (`a`, `b` and, for a full adder, `cin`).
    pub inputs: Vec<Sig>,
    /// The sum output.
    pub sum: Sig,
    /// The carry output.
    pub carry: Sig,
    /// Internal signals of the block (empty for half adders).
    pub internal: Vec<Sig>,
}

/// Detects half- and full-adder blocks structurally.
///
/// A full adder is recognized from its carry OR gate
/// `cout = (a ∧ b) ∨ (t ∧ cin)` with `t = a ⊕ b` and a sum gate
/// `t ⊕ cin`; a half adder from an XOR/AND pair over the same fanins.
/// XOR/AND pairs consumed by a full adder are not additionally reported
/// as half adders.
///
/// # Examples
///
/// ```
/// use sbif_core::blocks::{detect_atomic_blocks, BlockKind};
/// use sbif_netlist::{build::full_adder, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let c = nl.input("c");
/// let _ = full_adder(&mut nl, a, b, c);
/// let blocks = detect_atomic_blocks(&nl);
/// assert_eq!(blocks.len(), 1);
/// assert_eq!(blocks[0].kind, BlockKind::FullAdder);
/// ```
pub fn detect_atomic_blocks(nl: &Netlist) -> Vec<AtomicBlock> {
    let mut used = vec![false; nl.num_signals()];
    let mut blocks = Vec::new();

    let xor_of = |s: Sig| -> Option<(Sig, Sig)> {
        match *nl.gate(s) {
            Gate::Binary(BinOp::Xor, a, b) => Some((a, b)),
            _ => None,
        }
    };
    let and_of = |s: Sig| -> Option<(Sig, Sig)> {
        match *nl.gate(s) {
            Gate::Binary(BinOp::And, a, b) => Some((a, b)),
            _ => None,
        }
    };

    // Index XOR gates by their (sorted) fanin pair to find sum partners.
    let mut xor_by_fanins: std::collections::HashMap<(Sig, Sig), Vec<Sig>> =
        std::collections::HashMap::new();
    for s in nl.signals() {
        if let Some((a, b)) = xor_of(s) {
            let key = if a <= b { (a, b) } else { (b, a) };
            xor_by_fanins.entry(key).or_default().push(s);
        }
    }
    let find_xor = |x: Sig, y: Sig| -> Option<Sig> {
        let key = if x <= y { (x, y) } else { (y, x) };
        xor_by_fanins.get(&key).and_then(|v| v.first().copied())
    };

    // Full adders: start from the OR of two ANDs.
    for s in nl.signals() {
        let (l, r) = match *nl.gate(s) {
            Gate::Binary(BinOp::Or, l, r) => (l, r),
            _ => continue,
        };
        let (Some((la, lb)), Some((ra, rb))) = (and_of(l), and_of(r)) else {
            continue;
        };
        // One AND must be over (a, b), the other over (a ⊕ b, cin).
        let candidates = [(la, lb, ra, rb), (ra, rb, la, lb)];
        'cand: for &(a, b, p1, p2) in &candidates {
            let Some(t) = find_xor(a, b) else { continue };
            // (p1, p2) must be (t, cin) in some order.
            let cin = if p1 == t {
                p2
            } else if p2 == t {
                p1
            } else {
                continue;
            };
            let Some(sum) = find_xor(t, cin) else { continue };
            if sum == s {
                continue 'cand; // degenerate
            }
            let g = if and_of(l).map(|(x, y)| (x.min(y), x.max(y)))
                == Some((a.min(b), a.max(b)))
            {
                l
            } else {
                r
            };
            let p = if g == l { r } else { l };
            blocks.push(AtomicBlock {
                kind: BlockKind::FullAdder,
                inputs: vec![a, b, cin],
                sum,
                carry: s,
                internal: vec![t, g, p],
            });
            for &u in &[s, sum, t, g, p] {
                used[u.index()] = true;
            }
            break;
        }
    }

    // Half adders: remaining XOR/AND pairs over identical fanins.
    for s in nl.signals() {
        if used[s.index()] {
            continue;
        }
        let Some((a, b)) = and_of(s) else { continue };
        let Some(sum) = find_xor(a, b) else { continue };
        if used[sum.index()] {
            continue;
        }
        blocks.push(AtomicBlock {
            kind: BlockKind::HalfAdder,
            inputs: vec![a, b],
            sum,
            carry: s,
            internal: vec![],
        });
        used[s.index()] = true;
        used[sum.index()] = true;
    }

    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbif_netlist::build::{array_multiplier, nonrestoring_divider, ripple_adder};
    use sbif_netlist::{Netlist, Word};

    #[test]
    fn ripple_adder_has_one_fa_per_bit() {
        let mut nl = Netlist::new();
        let a = Word::inputs(&mut nl, "a", 8);
        let b = Word::inputs(&mut nl, "b", 8);
        let cin = nl.input("cin");
        let _ = ripple_adder(&mut nl, &a, &b, cin);
        let blocks = detect_atomic_blocks(&nl);
        let fas = blocks.iter().filter(|b| b.kind == BlockKind::FullAdder).count();
        assert_eq!(fas, 8);
    }

    #[test]
    fn half_adder_detected() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.xor(a, b);
        let c = nl.and(a, b);
        let blocks = detect_atomic_blocks(&nl);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].kind, BlockKind::HalfAdder);
        assert_eq!(blocks[0].sum, s);
        assert_eq!(blocks[0].carry, c);
    }

    #[test]
    fn multiplier_is_covered_by_adders() {
        let m = array_multiplier(4, 4);
        let blocks = detect_atomic_blocks(&m.netlist);
        let fas = blocks.iter().filter(|b| b.kind == BlockKind::FullAdder).count();
        let has = blocks.iter().filter(|b| b.kind == BlockKind::HalfAdder).count();
        // 3 reduction rows of 4 cells; the first cell of each row and
        // the top cell of the first row have constant operands and fold
        // into half adders.
        assert_eq!(fas, 8, "full adders");
        assert!(has >= 3, "half adders: {has}");
    }

    #[test]
    fn divider_stages_contain_full_adders() {
        let div = nonrestoring_divider(4);
        let blocks = detect_atomic_blocks(&div.netlist);
        let fas = blocks.iter().filter(|b| b.kind == BlockKind::FullAdder).count();
        // Each of the n CAS rows is w = 2n−1 bits of full adders (some
        // degenerate at the edges thanks to constant folding), plus the
        // correction adder.
        assert!(fas >= 20, "found only {fas} full adders");
    }

    #[test]
    fn no_false_positives_on_random_logic() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let x = nl.and(a, b);
        let y = nl.or(x, c);
        let z = nl.nand(y, a);
        nl.add_output("z", z);
        // AND(a,b) exists but no XOR(a,b): no half adder.
        assert!(detect_atomic_blocks(&nl).is_empty());
    }
}
