//! Specification polynomials.
//!
//! * The divider specification of Sect. III:
//!   `SP = Q·D + R − R⁰` over the quotient/remainder output variables and
//!   the dividend/divisor input variables. Backward rewriting must reduce
//!   it to the zero polynomial iff verification condition (vc1) holds.
//! * The signed ripple-adder polynomials of Lemma 2, used to validate the
//!   analytic term counts `|C_n| = ½(3^(n+1) − 1)` and
//!   `|P_n| = 2·3^(n+1) − 1`.
//! * A multiplier specification `⟨a⟩·⟨b⟩ − ⟨p⟩`, the circuit family on
//!   which plain backward rewriting (no SBIF) already succeeds.

use crate::gatepoly::var_of;
use sbif_apint::Int;
use sbif_netlist::build::{Divider, Multiplier};
use sbif_netlist::Word;
use sbif_poly::{signed_word, unsigned_word, Poly, Var};

/// Word of polynomial variables for a signal word.
fn word_vars(w: &Word) -> Vec<Var> {
    w.iter().map(|&s| var_of(s)).collect()
}

/// The divider specification polynomial `SP = Q·D + R − R⁰` (Sect. III).
///
/// `Q` and `D` are unsigned words; `R` is a two's-complement word
/// (its top bit carries weight `−2^(2n−2)`); `R⁰` is unsigned with its
/// constant-zero sign position.
///
/// # Examples
///
/// ```
/// use sbif_core::spec::divider_spec;
/// use sbif_netlist::build::nonrestoring_divider;
///
/// let div = nonrestoring_divider(2);
/// let sp = divider_spec(&div);
/// assert!(sp.num_terms() > 0);
/// ```
pub fn divider_spec(div: &Divider) -> Poly {
    let q = unsigned_word(&word_vars(&div.quotient));
    let d = unsigned_word(&word_vars(&div.divisor));
    let r = signed_word(&word_vars(&div.remainder));
    let r0 = unsigned_word(&word_vars(&div.dividend));
    &(&(&q * &d) + &r) - &r0
}

/// The multiplier specification polynomial `⟨a⟩·⟨b⟩ − ⟨p⟩`.
pub fn multiplier_spec(mult: &Multiplier) -> Poly {
    let a = unsigned_word(&word_vars(&mult.a));
    let b = unsigned_word(&word_vars(&mult.b));
    let p = unsigned_word(&word_vars(&mult.product));
    &(&a * &b) - &p
}

/// Variable convention for the Lemma 2 polynomials: `a_i = Var(i)`,
/// `b_i = Var(n + 1 + i)`, incoming carry `c = Var(2n + 2)` for an
/// `(n+1)`-bit signed adder with operand bits `0..=n`.
pub fn adder_vars(n: usize) -> (Vec<Var>, Vec<Var>, Var) {
    let a: Vec<Var> = (0..=n as u32).map(Var).collect();
    let b: Vec<Var> = (0..=n as u32).map(|i| Var(n as u32 + 1 + i)).collect();
    let c = Var(2 * n as u32 + 2);
    (a, b, c)
}

/// The carry polynomial `C_n` of Lemma 2: the pseudo-Boolean function of
/// the carry bit `c_{n−1}` of the unsigned addition of
/// `(a_{n−1}, …, a_0)`, `(b_{n−1}, …, b_0)` with incoming carry `c`,
/// expressed over the input bits. Lemma 2: it has `½(3^(n+1) − 1)` terms
/// for... (the carry *into* position `n`, i.e. out of position `n−1`).
pub fn adder_carry_poly(n: usize) -> Poly {
    let (a, b, c) = adder_vars(n);
    // carry_0 = c; carry_{i+1} = maj(a_i, b_i, carry_i)
    let mut carry = Poly::from_var(c);
    for i in 0..n {
        let pa = Poly::from_var(a[i]);
        let pb = Poly::from_var(b[i]);
        // maj(x, y, z) = xy + xz + yz − 2xyz
        let ab = &pa * &pb;
        let ac = &pa * &carry;
        let bc = &pb * &carry;
        let abc = &ab * &carry;
        carry = &(&(&ab + &ac) + &bc) - &abc.scale(&Int::from(2));
    }
    carry
}

/// The overflow polynomial `P_n = C_n·(1 − a_n − b_n + 2·a_n·b_n) − a_n·b_n`
/// of Lemma 2, with `2·3^(n+1) − 1` terms.
pub fn adder_overflow_poly(n: usize) -> Poly {
    let (a, b, _) = adder_vars(n);
    let cn = adder_carry_poly(n);
    let an = Poly::from_var(a[n]);
    let bn = Poly::from_var(b[n]);
    let anbn = &an * &bn;
    let guard = &(&(&Poly::one() - &an) - &bn) + &anbn.scale(&Int::from(2));
    &(&cn * &guard) - &anbn
}

/// The full signed-adder polynomial `A_n` of Lemma 2:
/// `[a]₂ + [b]₂ + c − 2^(n+1)·P_n` — the pseudo-Boolean function computed
/// by an `(n+1)`-bit two's-complement ripple adder when its result is
/// read back as a two's-complement number.
pub fn signed_adder_poly(n: usize) -> Poly {
    let (a, b, c) = adder_vars(n);
    let wa = signed_word(&a);
    let wb = signed_word(&b);
    let pc = Poly::from_var(c);
    let pn = adder_overflow_poly(n);
    &(&(&wa + &wb) + &pc) - &pn.shl(n as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbif_netlist::build::{array_multiplier, nonrestoring_divider};

    #[test]
    fn carry_poly_term_count_matches_lemma2() {
        // |C_n| = ½(3^n − 1) + 3^... — Lemma 2 counts the carry into the
        // sign position of an (n+1)-bit adder, built from n value bits:
        // with our indexing, adder_carry_poly(n) has ½(3^(n+1) − 1) terms.
        for n in 1..=6 {
            let c = adder_carry_poly(n);
            let expect = (3usize.pow(n as u32 + 1) - 1) / 2;
            assert_eq!(c.num_terms(), expect, "n={n}");
        }
    }

    #[test]
    fn overflow_poly_term_count_matches_lemma2() {
        for n in 1..=6 {
            let p = adder_overflow_poly(n);
            let expect = 2 * 3usize.pow(n as u32 + 1) - 1;
            assert_eq!(p.num_terms(), expect, "n={n}");
        }
    }

    #[test]
    fn carry_poly_is_the_carry_function() {
        // Check against direct arithmetic for n = 3.
        let n = 3;
        let c = adder_carry_poly(n);
        for bits in 0u32..(1 << (2 * n + 3)) {
            let asg = |v: Var| (bits >> v.0) & 1 == 1;
            let av: u32 = (0..n as u32).map(|i| ((bits >> i) & 1) << i).sum();
            let bv: u32 = (0..n as u32).map(|i| ((bits >> (n as u32 + 1 + i)) & 1) << i).sum();
            let cin = (bits >> (2 * n as u32 + 2)) & 1;
            let expect = (av + bv + cin) >> n;
            assert_eq!(c.eval(asg), Int::from(expect), "bits={bits:b}");
        }
    }

    #[test]
    fn signed_adder_poly_semantics() {
        // A_n must equal [s]₂ of the ripple-adder output whenever no
        // overflow occurs, i.e. A_n = [a]₂+[b]₂+c − 2^(n+1)·P_n always
        // equals the wrapped two's-complement result.
        let n = 2;
        let a_poly = signed_adder_poly(n);
        let w = n + 1;
        for bits in 0u32..(1 << (2 * w + 1)) {
            let asg = |v: Var| (bits >> v.0) & 1 == 1;
            let raw_a = bits & ((1 << w) - 1);
            let raw_b = (bits >> w) & ((1 << w) - 1);
            let cin = (bits >> (2 * w)) & 1;
            let signed = |x: u32| -> i64 {
                if x >> n & 1 == 1 {
                    x as i64 - (1 << w)
                } else {
                    x as i64
                }
            };
            // wrapped two's-complement sum
            let total = (raw_a + raw_b + cin) & ((1 << w) - 1);
            assert_eq!(
                a_poly.eval(asg),
                Int::from(signed(total)),
                "a={raw_a} b={raw_b} c={cin}"
            );
        }
    }

    #[test]
    fn divider_spec_vanishes_on_correct_outputs() {
        // Evaluate SP with output variables forced to the simulated
        // values: must be 0 for every input.
        let div = nonrestoring_divider(3);
        let sp = divider_spec(&div);
        for dv in 0u64..4 {
            for r0 in 0u64..16 {
                let inputs: Vec<bool> = div
                    .netlist
                    .inputs()
                    .iter()
                    .map(|&s| {
                        let name = div.netlist.name(s).expect("named");
                        let (bus, idx) = name.split_once('[').map(|(b, r)| {
                            (b, r.trim_end_matches(']').parse::<usize>().expect("idx"))
                        }).expect("bus");
                        let v = if bus == "r0" { r0 } else { dv };
                        (v >> idx) & 1 == 1
                    })
                    .collect();
                let vals = div.netlist.simulate_bool(&inputs);
                assert!(
                    sp.eval(|v| vals[v.0 as usize]).is_zero(),
                    "SP != 0 at r0={r0} d={dv}"
                );
            }
        }
    }

    #[test]
    fn multiplier_spec_vanishes_on_correct_outputs() {
        let m = array_multiplier(3, 3);
        let sp = multiplier_spec(&m);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let inputs: Vec<bool> = m
                    .netlist
                    .inputs()
                    .iter()
                    .map(|&s| {
                        let name = m.netlist.name(s).expect("named");
                        let (bus, idx) = name.split_once('[').map(|(bn, r)| {
                            (bn, r.trim_end_matches(']').parse::<usize>().expect("idx"))
                        }).expect("bus");
                        let v = if bus == "a" { a } else { b };
                        (v >> idx) & 1 == 1
                    })
                    .collect();
                let vals = m.netlist.simulate_bool(&inputs);
                assert!(sp.eval(|v| vals[v.0 as usize]).is_zero(), "{a}*{b}");
            }
        }
    }
}
