//! Backward rewriting (Sect. II-A) and its SBIF-modified variant
//! (Alg. 2).
//!
//! The engine substitutes gate-output variables by gate polynomials in
//! reverse topological order, treating detected half/full adders as
//! atomic blocks (the heuristics of \[10\], \[11\], restricted exactly as the
//! paper's footnote describes): the sum output of a full adder is
//! substituted by `a + b + cin − 2·carry` *together with* its carry,
//! which lets output signatures telescope instead of expanding XOR trees.
//!
//! With equivalence classes from Alg. 1 attached, every polynomial — the
//! specification and each substituted polynomial — first has its
//! variables replaced by the topologically minimal class representatives
//! (or their complements), *before* substitution. "It is crucial for the
//! success of the approach that those replacements are done as early as
//! possible, such that […] a blow-up is prevented before it can occur."

use crate::blocks::{detect_atomic_blocks, AtomicBlock, BlockKind};
use crate::error::VerifyError;
use crate::gatepoly::{gate_poly, var_of};
use crate::sbif::EquivClasses;
use sbif_netlist::{Netlist, Sig};
use sbif_poly::Poly;

/// Configuration of a rewriting run.
#[derive(Debug, Clone, Copy)]
pub struct RewriteConfig {
    /// Abort with [`VerifyError::TermLimitExceeded`] when an intermediate
    /// polynomial exceeds this many terms — models the MEMOUT entries of
    /// Table I.
    pub max_terms: Option<usize>,
    /// Record the polynomial size after every substitution (the series
    /// of Fig. 3). Off by default to save memory on long runs.
    pub record_trace: bool,
    /// Substitute detected half/full adders as atomic blocks. On by
    /// default; disable to watch the raw gate-by-gate blow-up.
    pub atomic_blocks: bool,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig { max_terms: None, record_trace: false, atomic_blocks: true }
    }
}

/// Statistics (and optional trace) of a rewriting run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Substitutions performed.
    pub steps: usize,
    /// Peak intermediate polynomial size in terms — the measure of
    /// Table I and Fig. 4.
    pub peak_terms: usize,
    /// Terms of the final polynomial (0 iff the specification holds).
    pub final_terms: usize,
    /// Full-adder sums substituted as atomic blocks.
    pub block_substitutions: usize,
    /// Sum of the intermediate polynomial sizes after every
    /// substitution — the area under the Fig. 3 curve, available without
    /// paying for [`trace`](Self::trace) recording.
    pub total_terms: u64,
    /// Size after each substitution, when
    /// [`record_trace`](RewriteConfig::record_trace) is set (Fig. 3).
    pub trace: Vec<usize>,
}

/// The backward rewriting engine.
///
/// # Examples
///
/// Plain rewriting proves a full adder against its specification:
///
/// ```
/// use sbif_core::rewrite::BackwardRewriter;
/// use sbif_core::gatepoly::var_of;
/// use sbif_netlist::{build::full_adder, Netlist};
/// use sbif_poly::Poly;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let cin = nl.input("cin");
/// let (s, c) = full_adder(&mut nl, a, b, cin);
/// // SP = 2·carry + sum − a − b − cin
/// let sp = Poly::from_var(var_of(c)).shl(1) + Poly::from_var(var_of(s))
///     - Poly::from_var(var_of(a)) - Poly::from_var(var_of(b))
///     - Poly::from_var(var_of(cin));
/// let (residual, stats) = BackwardRewriter::new(&nl).run(sp)?;
/// assert!(residual.is_zero());
/// assert!(stats.peak_terms <= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BackwardRewriter<'a> {
    nl: &'a Netlist,
    classes: Option<&'a EquivClasses>,
    cfg: RewriteConfig,
    interrupt: Option<sbif_govern::CancelToken>,
}

/// Per-run bookkeeping of atomic blocks.
struct BlockPlan {
    /// `carry_block[s] = Some(k)` iff signal `s` is the carry of block `k`.
    carry_block: Vec<Option<u32>>,
    /// Whether the sum of block `k` may be substituted early (at the
    /// carry's position): true iff no gate between the sum and the carry
    /// reads the sum.
    early_sum_safe: Vec<bool>,
    blocks: Vec<AtomicBlock>,
}

impl BlockPlan {
    fn new(nl: &Netlist) -> Self {
        let blocks = detect_atomic_blocks(nl);
        let mut carry_block = vec![None; nl.num_signals()];
        let fanouts = nl.fanouts();
        let mut early_sum_safe = Vec::with_capacity(blocks.len());
        for (k, b) in blocks.iter().enumerate() {
            carry_block[b.carry.index()] = Some(k as u32);
            // Early substitution of the sum at the carry's position is
            // only valid when no gate with an index in (sum, carry)
            // consumes the sum: such a gate's polynomial would
            // re-introduce the sum variable afterwards.
            let safe = fanouts[b.sum.index()]
                .iter()
                .all(|f| *f > b.carry || b.internal.contains(f));
            early_sum_safe.push(safe);
        }
        BlockPlan { carry_block, early_sum_safe, blocks }
    }
}

impl<'a> BackwardRewriter<'a> {
    /// A plain rewriter (no SBIF information) with default configuration.
    pub fn new(nl: &'a Netlist) -> Self {
        BackwardRewriter { nl, classes: None, cfg: RewriteConfig::default(), interrupt: None }
    }

    /// Attaches the wall-clock watchdog's cancel token: once it fires,
    /// the next substitution step returns
    /// [`VerifyError::Timeout`]`{ phase: "rewrite" }` instead of
    /// finishing the traversal. Purely cooperative — committed
    /// statistics up to the cut are untouched.
    pub fn with_interrupt(mut self, token: sbif_govern::CancelToken) -> Self {
        self.interrupt = Some(token);
        self
    }

    /// Attaches SBIF equivalence classes: the modified backward rewriting
    /// of Alg. 2.
    pub fn with_classes(mut self, classes: &'a EquivClasses) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Sets the configuration.
    pub fn with_config(mut self, cfg: RewriteConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replaces every variable of `p` by its class representative (lines
    /// 2–4 / 6–8 of Alg. 2) and folds constant-signal variables to their
    /// values — a constant variable would otherwise survive (its gate
    /// sits at the very bottom of the netlist) and clog every
    /// intermediate polynomial with vanishing monomials.
    fn map_to_representatives(&self, p: Poly) -> Poly {
        let mut out = p;
        for v in out.support() {
            let s = Sig(v.0);
            if let Some(value) = self.nl.const_value(s) {
                out = out.substitute_const(v, value);
                continue;
            }
            let Some(classes) = self.classes else { continue };
            let (r, neg) = classes.rep(s);
            if r.0 != v.0 {
                if let Some(value) = self.nl.const_value(r) {
                    out = out.substitute_const(v, value ^ neg);
                } else {
                    out = out.substitute_representative(v, var_of(r), !neg);
                }
            }
        }
        out
    }

    /// The polynomial substituted for the sum of block `k`:
    /// `a + b (+ cin) − 2·carry`.
    fn block_sum_poly(&self, block: &AtomicBlock) -> Poly {
        let mut p = Poly::zero();
        for &i in &block.inputs {
            p += &Poly::from_var(var_of(i));
        }
        p -= &Poly::from_var(var_of(block.carry)).shl(1);
        p
    }

    /// The polynomial substituted for the carry of block `k`:
    /// `a·b` (half adder) or `maj(a, b, cin)` (full adder).
    fn block_carry_poly(&self, block: &AtomicBlock) -> Poly {
        match block.kind {
            BlockKind::HalfAdder => Poly::and(
                &Poly::from_var(var_of(block.inputs[0])),
                &Poly::from_var(var_of(block.inputs[1])),
            ),
            BlockKind::FullAdder => Poly::majority3(
                var_of(block.inputs[0]),
                var_of(block.inputs[1]),
                var_of(block.inputs[2]),
            ),
        }
    }

    /// Runs backward rewriting on the specification polynomial,
    /// substituting every signal.
    ///
    /// Returns the final polynomial (zero iff the specification holds on
    /// the whole input space, modulo the constraint under which the SBIF
    /// classes were proven) and the statistics.
    ///
    /// # Errors
    ///
    /// [`VerifyError::TermLimitExceeded`] when an intermediate polynomial
    /// outgrows the configured limit.
    pub fn run(&self, spec: Poly) -> Result<(Poly, RewriteStats), VerifyError> {
        self.run_filtered(spec, |_| true)
    }

    /// Like [`run`](Self::run), but only substitutes signals for which
    /// `keep` returns `true` — the checkpoint API used to reproduce the
    /// Sect. III observation about the polynomial at the final-adder cut.
    ///
    /// # Errors
    ///
    /// [`VerifyError::TermLimitExceeded`] when an intermediate polynomial
    /// outgrows the configured limit.
    pub fn run_filtered(
        &self,
        spec: Poly,
        keep: impl Fn(Sig) -> bool,
    ) -> Result<(Poly, RewriteStats), VerifyError> {
        let mut stats = RewriteStats::default();
        let mut sp = self.map_to_representatives(spec);
        stats.peak_terms = sp.num_terms();
        let plan = if self.cfg.atomic_blocks {
            Some(BlockPlan::new(self.nl))
        } else {
            None
        };
        let mut done = vec![false; self.nl.num_signals()];

        for s in self.nl.signals().rev() {
            if done[s.index()] {
                continue;
            }
            // Atomic blocks: when the scan reaches a carry whose sum is
            // still pending, substitute the sum first (with the
            // telescoping block polynomial), then the carry.
            if let Some(plan) = plan.as_ref() {
                if let Some(k) = plan.carry_block[s.index()] {
                    let block = &plan.blocks[k as usize];
                    if plan.early_sum_safe[k as usize]
                        && !done[block.sum.index()]
                        && keep(block.sum)
                        && self.eligible(block.sum)
                    {
                        let p = self.map_to_representatives(self.block_sum_poly(block));
                        // SBIF may have put the carry into the *sum's*
                        // class (e.g. complementary operands make
                        // sum ≡ ¬carry); then the telescoping polynomial
                        // maps back onto the sum variable. When the
                        // self-occurrence is the single linear term
                        // `+2·s` (carry ↦ 1 − s), the equation
                        // `s = q + 2s` solves to `s = −q`; otherwise fall
                        // back to the plain gate polynomial at the sum's
                        // own scan position.
                        let v = var_of(block.sum);
                        let solved = if p.contains_var(v) {
                            let vmono = sbif_poly::Monomial::var(v);
                            let linear_only = p
                                .terms()
                                .iter()
                                .filter(|t| t.monomial.contains(v))
                                .all(|t| t.monomial == vmono);
                            if linear_only && p.coeff(&vmono) == 2.into() {
                                let q = &p - &Poly::from_var(v).shl(1);
                                Some(-q)
                            } else {
                                None
                            }
                        } else {
                            Some(p)
                        };
                        if let Some(p) = solved {
                            self.substitute(&mut sp, block.sum, p, &mut stats)?;
                            stats.block_substitutions += 1;
                            done[block.sum.index()] = true;
                        }
                    }
                    if keep(s) && self.eligible(s) {
                        let p = self.block_carry_poly(block);
                        self.substitute(&mut sp, s, p, &mut stats)?;
                    }
                    done[s.index()] = true;
                    continue;
                }
            }
            done[s.index()] = true;
            if !keep(s) || !self.eligible(s) {
                continue;
            }
            let Some(p) = gate_poly(self.nl, s) else {
                continue; // primary input: stays in the polynomial
            };
            self.substitute(&mut sp, s, p, &mut stats)?;
        }
        stats.final_terms = sp.num_terms();
        Ok((sp, stats))
    }

    /// Whether `s` should be substituted at all (class representatives
    /// only, in SBIF mode).
    fn eligible(&self, s: Sig) -> bool {
        self.classes.is_none_or(|c| c.is_rep(s))
    }

    /// One substitution step with statistics and the term limit.
    fn substitute(
        &self,
        sp: &mut Poly,
        s: Sig,
        p: Poly,
        stats: &mut RewriteStats,
    ) -> Result<(), VerifyError> {
        let v = var_of(s);
        if !sp.contains_var(v) {
            return Ok(());
        }
        let p = self.map_to_representatives(p);
        debug_assert!(
            !p.contains_var(v),
            "self-referencing substitution for {s} would never resolve"
        );
        *sp = sp.substitute(v, &p);
        stats.steps += 1;
        let size = sp.num_terms();
        stats.peak_terms = stats.peak_terms.max(size);
        stats.total_terms += size as u64;
        if self.cfg.record_trace {
            stats.trace.push(size);
        }
        if let Some(limit) = self.cfg.max_terms {
            if size > limit {
                return Err(VerifyError::TermLimitExceeded {
                    limit,
                    reached: size,
                    steps: stats.steps,
                });
            }
        }
        if self.interrupt.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Err(VerifyError::Timeout { phase: "rewrite" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbif::EquivClasses;
    use crate::spec::{divider_spec, multiplier_spec};
    use sbif_netlist::build::{array_multiplier, nonrestoring_divider, ripple_adder};
    use sbif_netlist::Word;
    use sbif_poly::{unsigned_word, Var};

    #[test]
    fn ripple_adder_specification_reduces_to_zero() {
        let mut nl = Netlist::new();
        let a = Word::inputs(&mut nl, "a", 6);
        let b = Word::inputs(&mut nl, "b", 6);
        let cin = nl.input("cin");
        let (sum, cout) = ripple_adder(&mut nl, &a, &b, cin);
        let mut out_bits: Vec<Var> = sum.iter().map(|&s| var_of(s)).collect();
        out_bits.push(var_of(cout));
        let sp = unsigned_word(&out_bits)
            - unsigned_word(&a.iter().map(|&s| var_of(s)).collect::<Vec<_>>())
            - unsigned_word(&b.iter().map(|&s| var_of(s)).collect::<Vec<_>>())
            - Poly::from_var(var_of(cin));
        let (res, stats) = BackwardRewriter::new(&nl).run(sp).expect("no blow-up");
        assert!(res.is_zero(), "residual: {res}");
        // With atomic blocks the signature telescopes: tiny peaks.
        assert!(stats.peak_terms < 30, "peak {}", stats.peak_terms);
        assert!(stats.block_substitutions >= 6);
    }

    #[test]
    fn multiplier_specification_reduces_to_zero_without_sbif() {
        // The contrast the paper draws: plain backward rewriting handles
        // multipliers fine.
        let m = array_multiplier(5, 5);
        let sp = multiplier_spec(&m);
        let (res, stats) =
            BackwardRewriter::new(&m.netlist).run(sp).expect("no blow-up");
        assert!(res.is_zero());
        assert!(stats.peak_terms < 500, "peak {}", stats.peak_terms);
    }

    #[test]
    fn divider_blows_up_without_sbif() {
        // Table I: peaks grow exponentially even with atomic blocks.
        let mut peaks = Vec::new();
        for n in [2usize, 3, 4] {
            let div = nonrestoring_divider(n);
            let sp = divider_spec(&div);
            let (res, stats) = BackwardRewriter::new(&div.netlist)
                .with_config(RewriteConfig { record_trace: true, ..Default::default() })
                .run(sp)
                .expect("small widths fit");
            assert!(res.is_zero(), "vc1 holds, so the final polynomial is 0");
            assert_eq!(stats.trace.len(), stats.steps);
            assert_eq!(*stats.trace.last().expect("steps"), 0);
            peaks.push(stats.peak_terms);
        }
        assert!(
            peaks[2] > 3 * peaks[1] && peaks[1] > 3 * peaks[0],
            "exponential growth expected: {peaks:?}"
        );
    }

    #[test]
    fn term_limit_reports_memout() {
        let div = nonrestoring_divider(5);
        let sp = divider_spec(&div);
        let err = BackwardRewriter::new(&div.netlist)
            .with_config(RewriteConfig { max_terms: Some(100), ..Default::default() })
            .run(sp)
            .expect_err("must exceed 100 terms");
        match err {
            VerifyError::TermLimitExceeded { limit, reached, .. } => {
                assert_eq!(limit, 100);
                assert!(reached > 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// The paper's Example 1: the Fig. 1 circuit extended by
    /// `h4 = a1 ⊕ b1`, `s1 = c0 ⊕ h4`, rewritten from `s0 − 2·s1`
    /// with the knowledge `b1 = ¬a1`.
    fn example1_circuit() -> (Netlist, Vec<Sig>) {
        let mut nl = Netlist::new();
        let a0 = nl.input("a0");
        let b0 = nl.input("b0");
        let c = nl.input("c");
        let a1 = nl.input("a1");
        let b1 = nl.input("b1");
        let h1 = nl.xor(a0, b0);
        let h2 = nl.and(a0, b0);
        let h3 = nl.and(h1, c);
        let s0 = nl.xor(h1, c);
        let c0 = nl.or(h2, h3);
        let h4 = nl.xor(a1, b1);
        let s1 = nl.xor(c0, h4);
        (nl, vec![a0, b0, c, a1, b1, s0, s1])
    }

    /// Gate-by-gate rewriting (no atomic blocks), as in the paper's
    /// worked example.
    fn gate_level_cfg() -> RewriteConfig {
        RewriteConfig { atomic_blocks: false, record_trace: true, max_terms: None }
    }

    #[test]
    fn example1_without_knowledge_blows_up() {
        let (nl, sigs) = example1_circuit();
        let (s0, s1) = (sigs[5], sigs[6]);
        let sp = &Poly::from_var(var_of(s0)) - &Poly::from_var(var_of(s1)).shl(1);
        let (res, stats) = BackwardRewriter::new(&nl)
            .with_config(gate_level_cfg())
            .run(sp)
            .expect("small circuit");
        // The paper's ~22-term polynomial (17 of whose terms vanish
        // under b1 = ¬a1).
        assert!(res.num_terms() >= 20, "got {} terms", res.num_terms());
        assert!(stats.peak_terms >= 20);
        // Sanity: forcing b1 = ¬a1 *after* the fact leaves a0 + b0 + c − 2.
        let collapsed =
            res.substitute_representative(var_of(sigs[4]), var_of(sigs[3]), false);
        assert_eq!(collapsed.num_terms(), 4);
    }

    #[test]
    fn example1_with_knowledge_stays_small() {
        let (nl, sigs) = example1_circuit();
        let (a1, b1, s0, s1) = (sigs[3], sigs[4], sigs[5], sigs[6]);
        let mut classes = EquivClasses::new(nl.num_signals());
        classes.union(b1, a1, true); // b1 = ¬a1
        let sp = &Poly::from_var(var_of(s0)) - &Poly::from_var(var_of(s1)).shl(1);
        let (res, stats) = BackwardRewriter::new(&nl)
            .with_classes(&classes)
            .with_config(gate_level_cfg())
            .run(sp)
            .expect("small circuit");
        // "During the modified backward rewriting we never observe more
        // than 5 terms in a polynomial." — with the paper's substitution
        // order; our reverse-index order holds both adder outputs
        // expanded for one step, allowing 7. The point stands: bounded
        // tiny peak instead of the 20+-term expansion.
        assert!(stats.peak_terms <= 7, "peak {} > 7", stats.peak_terms);
        // Final polynomial: a0 + b0 + c − 2.
        assert_eq!(res.num_terms(), 4);
        assert_eq!(res.support().len(), 3);
    }

    #[test]
    fn block_and_gate_level_agree() {
        // Atomic blocks change the peaks, never the result.
        for n in [2usize, 3] {
            let div = nonrestoring_divider(n);
            let sp = divider_spec(&div);
            let (r1, _) = BackwardRewriter::new(&div.netlist)
                .run(sp.clone())
                .expect("fits");
            let (r2, _) = BackwardRewriter::new(&div.netlist)
                .with_config(RewriteConfig { atomic_blocks: false, ..Default::default() })
                .run(sp)
                .expect("fits");
            assert_eq!(r1, r2, "n={n}");
        }
    }

    #[test]
    fn filtered_run_stops_at_cut() {
        // Substituting only the gates above a cut leaves a polynomial
        // over cut signals.
        let div = nonrestoring_divider(3);
        let sp = divider_spec(&div);
        let cut = div.netlist.num_signals() as u32 / 2;
        let (res, _) = BackwardRewriter::new(&div.netlist)
            .run_filtered(sp, |s| s.0 >= cut)
            .expect("no limit");
        assert!(!res.is_zero());
        // Every remaining variable is below the cut or an input.
        for v in res.support() {
            assert!(v.0 < cut || div.netlist.gate(Sig(v.0)).is_input());
        }
    }

    #[test]
    fn rep_mapping_handles_constant_representatives() {
        let mut nl = Netlist::new();
        let z = nl.const0();
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.or(a, b);
        nl.add_output("g", g);
        let mut classes = EquivClasses::new(nl.num_signals());
        // Pretend SBIF proved b ≡ 0 (b joins the constant class).
        classes.union(b, z, false);
        let sp = &Poly::from_var(var_of(g)) - &Poly::from_var(var_of(a));
        let (res, _) = BackwardRewriter::new(&nl)
            .with_classes(&classes)
            .run(sp)
            .expect("tiny");
        // (a ∨ b)[b ← 0] − a = a − a = 0
        assert!(res.is_zero(), "residual {res}");
    }
}
