//! Measures the vc2 check in isolation (Table II columns 8–9).
use sbif_core::vc2::{check_vc2, Vc2Config};
use sbif_netlist::build::nonrestoring_divider;
fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let thr: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let div = nonrestoring_divider(n);
    let t = std::time::Instant::now();
    let cap: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(1 << 14);
    let r = check_vc2(&div, Vc2Config { reorder_threshold: thr, table_capacity: cap });
    println!("n={n} holds={} peak_nodes={} reorders={} time={:.2}s", r.holds, r.peak_nodes, r.wpc_stats.reorders, t.elapsed().as_secs_f64());
}
