//! Measures the SCA-side Table II columns (read / #equiv / SBIF / rewrite).
use sbif_core::rewrite::BackwardRewriter;
use sbif_core::sbif::{divider_sim_words, forward_information, SbifConfig};
use sbif_core::spec::divider_spec;
use sbif_netlist::build::nonrestoring_divider;
use sbif_netlist::io::{read_bnet, write_bnet};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let div = nonrestoring_divider(n);
    let text = write_bnet(&div.netlist);
    let t = Instant::now();
    let parsed = read_bnet(&text).expect("parses");
    let read = t.elapsed();
    assert_eq!(parsed.num_signals(), div.netlist.num_signals());
    let t = Instant::now();
    let sim = divider_sim_words(&div, 0xD1_71DE5, 2);
    let (classes, stats) =
        forward_information(&div.netlist, Some(div.constraint), &sim, SbifConfig::default());
    let sbif = t.elapsed();
    let t = Instant::now();
    let (res, st) = BackwardRewriter::new(&div.netlist)
        .with_classes(&classes)
        .run(divider_spec(&div))
        .expect("fits");
    assert!(res.is_zero());
    println!(
        "n={n} read={:.2}s equiv={} sbif={:.2}s rewrite={:.2}s peak={}",
        read.as_secs_f64(), stats.proven, sbif.as_secs_f64(), t.elapsed().as_secs_f64(), st.peak_terms
    );
}
