//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace has an offline-only dependency policy (see DESIGN.md):
//! `cargo build`/`cargo test` must succeed with no network access, so
//! crates.io generators are off limits. Everything that needs randomness
//! — constrained simulation vectors (Alg. 1 line 1), SAT-sweeping
//! patterns, fuzz and property tests — uses this splitmix64-seeded
//! xorshift64* generator instead.
//!
//! The generator is *not* cryptographic and is not meant to be: its jobs
//! are statistical diversity of 64-bit simulation planes and exact
//! reproducibility from a printed seed.
//!
//! # Examples
//!
//! ```
//! use sbif_rng::XorShift64;
//!
//! let mut rng = XorShift64::seed_from_u64(42);
//! let a = rng.next_u64();
//! assert_ne!(a, rng.next_u64());
//! // Same seed, same sequence.
//! assert_eq!(XorShift64::seed_from_u64(42).next_u64(), a);
//! let d = rng.below(10);
//! assert!(d < 10);
//! ```

/// A xorshift64* generator with splitmix64 seed scrambling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed is fine (including 0 —
    /// the splitmix64 scrambler never yields the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64: decorrelates consecutive seeds so that seed and
        // seed+1 give unrelated streams.
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        XorShift64 { state: z | 1 }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniformly distributed boolean.
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit: the low bits of xorshift outputs are weaker.
        self.next_u64() >> 63 == 1
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Multiply-shift bounded sampling (Lemire); the modulo bias of
        // `% n` would be fine for test workloads, but this is cheaper
        // than a division anyway.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `usize` index in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` (all 64 bits random, reinterpreted).
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A uniform `i128` built from two draws.
    pub fn next_i128(&mut self) -> i128 {
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = XorShift64::seed_from_u64(0);
        let mut b = XorShift64::seed_from_u64(1);
        let differing = (0..64).filter(|_| a.next_u64() != b.next_u64()).count();
        assert_eq!(differing, 64);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = XorShift64::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_is_in_range_and_hits_all_residues() {
        let mut r = XorShift64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..512 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "512 draws must cover 0..7");
    }

    #[test]
    fn bools_are_balanced() {
        let mut r = XorShift64::seed_from_u64(11);
        let ones = (0..4096).filter(|_| r.next_bool()).count();
        assert!((1700..2400).contains(&ones), "heavily biased: {ones}/4096");
    }

    #[test]
    fn word_bits_are_balanced() {
        // Each bit position of the output should be ~50% set — the
        // simulation planes rely on per-bit diversity.
        let mut r = XorShift64::seed_from_u64(5);
        let mut counts = [0u32; 64];
        for _ in 0..2048 {
            let w = r.next_u64();
            for (k, c) in counts.iter_mut().enumerate() {
                *c += (w >> k & 1) as u32;
            }
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!((700..1350).contains(&c), "bit {k} biased: {c}/2048");
        }
    }
}
