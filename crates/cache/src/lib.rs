//! Content-addressed verification result cache (ROADMAP item 3).
//!
//! A verdict is a pure function of the design key derived by
//! `sbif-analysis::cachekey` — the canonical digests of the output
//! cones, the named interface, the side condition C, and the flow
//! configuration fingerprint. This crate stores `(verdict, payload)`
//! entries under such 128-bit keys, with two backings behind one API:
//!
//! * **in-memory** — a process-local map, shared across the jobs of a
//!   `sbif-serve` daemon or the mutants of a fuzz campaign;
//! * **on-disk** (`--cache-dir`) — one file per entry, written
//!   atomically (temp + rename) so concurrent writers and crashed runs
//!   can never corrupt a hit; a corrupt or truncated entry simply
//!   degrades to a miss.
//!
//! Alongside whole-design entries the cache tracks which per-cone
//! digests have ever been judged. [`ResultCache::lookup`] reports,
//! cone by cone, which of the probe's cones are already known
//! ([`Lookup::cone_hits`] / [`Lookup::cone_misses`]): re-verifying a
//! design with one mutated gate misses the design key but shows
//! exactly the dirty cones as cold, which is what the differential
//! tests assert and what incremental re-proof builds on.
//!
//! The crate has **zero dependencies** (std only) and does no hashing
//! of its own — keys and cone digests are opaque values supplied by
//! the caller, so there is no dependency cycle with the analysis
//! layer.
//!
//! # Examples
//!
//! ```
//! use sbif_cache::{Entry, ResultCache};
//!
//! let cache = ResultCache::in_memory();
//! let cones = [(0xfeed_u64, false), (0xbeef_u64, true)];
//! assert!(cache.lookup(42, &cones).entry.is_none());
//! cache.store(42, &cones, &Entry::new("correct", "{}")).unwrap();
//! let hit = cache.lookup(42, &cones);
//! assert_eq!(hit.entry.unwrap().verdict, "correct");
//! assert_eq!(hit.cone_hits, 2);
//! ```

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A stored verification result: the verdict plus an opaque payload
/// (by convention the canonical sbif-metrics-v1 JSON of the run that
/// produced it, replayed verbatim on a hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Short verdict token, e.g. `correct` / `not-correct` /
    /// `inconclusive`. Must not contain newlines.
    pub verdict: String,
    /// Arbitrary payload text (metrics stub, kill-matrix row, …).
    pub payload: String,
    /// Optional single-line qualifier bound to the entry — by
    /// convention the governor's budget stamp for `inconclusive`
    /// verdicts, so a lookup under a different budget can reject the
    /// hit (an inconclusive result is only valid for the exact budget
    /// that produced it; see DESIGN.md §16). Entries written by older
    /// versions read back with `stamp == None`.
    pub stamp: Option<String>,
}

impl Entry {
    /// Convenience constructor (no stamp).
    pub fn new(verdict: impl Into<String>, payload: impl Into<String>) -> Entry {
        Entry { verdict: verdict.into(), payload: payload.into(), stamp: None }
    }

    /// Attaches a budget stamp (single line).
    pub fn with_stamp(mut self, stamp: impl Into<String>) -> Entry {
        self.stamp = Some(stamp.into());
        self
    }
}

/// The outcome of a [`ResultCache::lookup`].
#[derive(Debug, Clone, Default)]
pub struct Lookup {
    /// The stored entry, if the full design key is known.
    pub entry: Option<Entry>,
    /// How many of the probe's cone digests were already judged.
    pub cone_hits: usize,
    /// How many were never seen — the *dirty* cones of an edit.
    pub cone_misses: usize,
}

/// A content-addressed result store; see the crate docs.
///
/// All methods take `&self`; the cache is `Sync` and meant to be
/// shared (`Arc<ResultCache>`) across worker threads.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    entries: Mutex<HashMap<u128, Entry>>,
    cones: Mutex<HashSet<(u64, bool)>>,
}

const MAGIC: &str = "sbif-cache-v1";

impl ResultCache {
    /// A purely process-local cache.
    pub fn in_memory() -> ResultCache {
        ResultCache { dir: None, entries: Mutex::new(HashMap::new()), cones: Mutex::new(HashSet::new()) }
    }

    /// A cache persisted under `dir` (created if absent). Entries live
    /// in `dir/entries/`, cone markers in `dir/cones/`. The in-memory
    /// layer fronts the disk, so repeated lookups don't re-read files.
    pub fn on_disk(dir: impl AsRef<Path>) -> io::Result<ResultCache> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(dir.join("entries"))?;
        std::fs::create_dir_all(dir.join("cones"))?;
        // A writer killed between temp-write and rename leaves a
        // `<key>.tmp.<pid>` orphan; the entry itself is absent (a clean
        // miss), but the orphans would otherwise accumulate forever.
        sweep_tmp_files(&dir.join("entries"));
        Ok(ResultCache {
            dir: Some(dir),
            entries: Mutex::new(HashMap::new()),
            cones: Mutex::new(HashSet::new()),
        })
    }

    /// Whether this cache persists to disk.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    fn entry_path(dir: &Path, key: u128) -> PathBuf {
        dir.join("entries").join(format!("{key:032x}.entry"))
    }

    fn cone_path(dir: &Path, cone: (u64, bool)) -> PathBuf {
        dir.join("cones").join(format!("{:016x}.{}", cone.0, cone.1 as u8))
    }

    /// Looks up a design key and accounts the probe's cones.
    pub fn lookup(&self, key: u128, cones: &[(u64, bool)]) -> Lookup {
        let mut entry = self.entries.lock().unwrap().get(&key).cloned();
        if entry.is_none() {
            if let Some(dir) = &self.dir {
                if let Some(e) = read_entry(&Self::entry_path(dir, key)) {
                    self.entries.lock().unwrap().insert(key, e.clone());
                    entry = Some(e);
                }
            }
        }
        let (mut cone_hits, mut cone_misses) = (0, 0);
        {
            let known = self.cones.lock().unwrap();
            for &c in cones {
                let hit = known.contains(&c)
                    || self
                        .dir
                        .as_ref()
                        .is_some_and(|dir| Self::cone_path(dir, c).exists());
                if hit {
                    cone_hits += 1;
                } else {
                    cone_misses += 1;
                }
            }
        }
        Lookup { entry, cone_hits, cone_misses }
    }

    /// Stores an entry and marks every cone as judged. Disk writes are
    /// atomic (unique temp file + rename), so a concurrent reader sees
    /// either the old state or the complete new entry, never a torn
    /// one.
    pub fn store(&self, key: u128, cones: &[(u64, bool)], entry: &Entry) -> io::Result<()> {
        debug_assert!(!entry.verdict.contains('\n'), "verdicts are single-line");
        debug_assert!(
            entry.stamp.as_ref().is_none_or(|s| !s.contains('\n')),
            "stamps are single-line"
        );
        self.entries.lock().unwrap().insert(key, entry.clone());
        {
            let mut known = self.cones.lock().unwrap();
            for &c in cones {
                known.insert(c);
            }
        }
        if let Some(dir) = &self.dir {
            let path = Self::entry_path(dir, key);
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, format_entry(entry))?;
            std::fs::rename(&tmp, &path)?;
            for &c in cones {
                // Marker files carry no content; existence is the fact.
                let p = Self::cone_path(dir, c);
                if !p.exists() {
                    let _ = std::fs::write(p, b"");
                }
            }
        }
        Ok(())
    }

    /// Number of entries reachable without touching the disk (loaded +
    /// freshly stored). Diagnostic only.
    pub fn loaded_entries(&self) -> usize {
        self.entries.lock().unwrap().len()
    }
}

/// Removes abandoned atomic-write temporaries (`*.tmp.<pid>`) from an
/// entry directory. Racing a *live* writer is harmless: `rename`
/// replaces the destination atomically, and a concurrently-unlinked
/// temp makes that writer's single `store` fail without corrupting
/// anything — the entry is simply rewritten on the next store.
fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let name = e.file_name();
        if name.to_string_lossy().contains(".tmp.") {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

fn format_entry(entry: &Entry) -> String {
    let stamp = match &entry.stamp {
        Some(s) => format!("stamp {s}\n"),
        None => String::new(),
    };
    format!(
        "{MAGIC}\nverdict {}\n{stamp}payload-len {}\n{}",
        entry.verdict,
        entry.payload.len(),
        entry.payload
    )
}

/// Parses an entry file; any deviation from the format reads as `None`
/// (a miss), never an error — a cache must degrade, not abort. The
/// `stamp` line is optional, so pre-stamp entries stay readable.
fn read_entry(path: &Path) -> Option<Entry> {
    let text = std::fs::read_to_string(path).ok()?;
    let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let (vline, rest) = rest.split_once('\n')?;
    let verdict = vline.strip_prefix("verdict ")?;
    let (head, rest) = rest.split_once('\n')?;
    let (stamp, lline, payload) = match head.strip_prefix("stamp ") {
        Some(s) => {
            let (lline, payload) = rest.split_once('\n')?;
            (Some(s), lline, payload)
        }
        None => (None, head, rest),
    };
    let len: usize = lline.strip_prefix("payload-len ")?.parse().ok()?;
    if payload.len() != len {
        return None; // truncated or padded — treat as corrupt
    }
    let mut entry = Entry::new(verdict, payload);
    if let Some(s) = stamp {
        entry = entry.with_stamp(s);
    }
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sbif_cache_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_roundtrip_and_cone_accounting() {
        let cache = ResultCache::in_memory();
        let cones = [(1u64, false), (2u64, true), (3u64, false)];
        let miss = cache.lookup(7, &cones);
        assert!(miss.entry.is_none());
        assert_eq!((miss.cone_hits, miss.cone_misses), (0, 3));

        cache.store(7, &cones, &Entry::new("correct", "{\"m\":1}")).unwrap();
        let hit = cache.lookup(7, &cones);
        assert_eq!(hit.entry.unwrap(), Entry::new("correct", "{\"m\":1}"));
        assert_eq!((hit.cone_hits, hit.cone_misses), (3, 0));

        // A mutated design: new key, one dirty cone.
        let mutated = [(1u64, false), (2u64, true), (99u64, false)];
        let part = cache.lookup(8, &mutated);
        assert!(part.entry.is_none());
        assert_eq!((part.cone_hits, part.cone_misses), (2, 1));
    }

    #[test]
    fn disk_roundtrip_across_instances() {
        let dir = tmpdir("disk");
        let cones = [(0xabcdu64, true)];
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            cache.store(42, &cones, &Entry::new("not-correct", "payload\nwith\nnewlines")).unwrap();
        }
        // A fresh instance (fresh process, in spirit) sees the entry.
        let cache = ResultCache::on_disk(&dir).unwrap();
        assert!(cache.is_persistent());
        let hit = cache.lookup(42, &cones);
        assert_eq!(hit.entry.unwrap(), Entry::new("not-correct", "payload\nwith\nnewlines"));
        assert_eq!((hit.cone_hits, hit.cone_misses), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = tmpdir("corrupt");
        let cache = ResultCache::on_disk(&dir).unwrap();
        cache.store(1, &[], &Entry::new("correct", "abc")).unwrap();
        drop(cache);

        let path = dir.join("entries").join(format!("{:032x}.entry", 1u128));
        for bad in ["", "garbage", "sbif-cache-v1\nverdict x\npayload-len 999\nabc"] {
            std::fs::write(&path, bad).unwrap();
            let fresh = ResultCache::on_disk(&dir).unwrap();
            assert!(fresh.lookup(1, &[]).entry.is_none(), "{bad:?}");
        }
        // And an intact file still reads back.
        std::fs::write(&path, format_entry(&Entry::new("correct", "abc"))).unwrap();
        let fresh = ResultCache::on_disk(&dir).unwrap();
        assert_eq!(fresh.lookup(1, &[]).entry.unwrap().verdict, "correct");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stamped_entries_roundtrip_and_unstamped_files_stay_readable() {
        let dir = tmpdir("stamp");
        {
            let cache = ResultCache::on_disk(&dir).unwrap();
            let stamped = Entry::new("inconclusive", "{}").with_stamp("sbif-govern-v1 x=1");
            cache.store(9, &[], &stamped).unwrap();
        }
        let fresh = ResultCache::on_disk(&dir).unwrap();
        let hit = fresh.lookup(9, &[]).entry.unwrap();
        assert_eq!(hit.verdict, "inconclusive");
        assert_eq!(hit.stamp.as_deref(), Some("sbif-govern-v1 x=1"));

        // A pre-stamp file (no `stamp` line) parses with stamp == None.
        let path = dir.join("entries").join(format!("{:032x}.entry", 9u128));
        std::fs::write(&path, "sbif-cache-v1\nverdict correct\npayload-len 2\nok").unwrap();
        let old = ResultCache::on_disk(&dir).unwrap();
        let hit = old.lookup(9, &[]).entry.unwrap();
        assert_eq!((hit.verdict.as_str(), hit.stamp), ("correct", None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_mid_write_temp_is_reaped_and_reads_as_a_miss() {
        let dir = tmpdir("crash");
        // Simulate a writer killed between temp-write and rename: the
        // temp exists (half a formatted entry), the entry does not.
        let entries = dir.join("entries");
        std::fs::create_dir_all(&entries).unwrap();
        let orphan = entries.join(format!("{:032x}.tmp.4242", 77u128));
        std::fs::write(&orphan, "sbif-cache-v1\nverdict corr").unwrap();

        let cache = ResultCache::on_disk(&dir).unwrap();
        assert!(cache.lookup(77, &[]).entry.is_none(), "half-written entry must miss");
        assert!(!orphan.exists(), "orphaned temp must be swept on open");
        // Real entries survive the sweep.
        cache.store(77, &[], &Entry::new("correct", "p")).unwrap();
        let fresh = ResultCache::on_disk(&dir).unwrap();
        assert!(fresh.lookup(77, &[]).entry.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = tmpdir("empty");
        let cache = ResultCache::on_disk(&dir).unwrap();
        cache.store(5, &[], &Entry::new("correct", "")).unwrap();
        let fresh = ResultCache::on_disk(&dir).unwrap();
        assert_eq!(fresh.lookup(5, &[]).entry.unwrap().payload, "");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(ResultCache::in_memory());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let key = (t * 50 + i) as u128;
                        cache.store(key, &[(key as u64, false)], &Entry::new("correct", "p")).unwrap();
                        assert!(cache.lookup(key, &[(key as u64, false)]).entry.is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.loaded_entries(), 200);
    }
}
