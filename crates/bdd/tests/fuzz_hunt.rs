//! Randomized stress tests of dynamic reordering and garbage
//! collection: random circuits are built, sifted and collected while
//! their truth tables are checked against a reference.

use sbif_bdd::{Bdd, BddManager, VarId};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn truth_table(m: &BddManager, f: Bdd, vars: u32) -> Vec<bool> {
    (0..(1u64 << vars))
        .map(|bits| m.eval(f, |v| (bits >> v) & 1 == 1))
        .collect()
}

/// Check structural invariants: reducedness, ordering, unique table consistency,
/// and canonicity (no two live reachable nodes with the same key / function).
fn check_invariants(m: &BddManager, roots: &[Bdd]) {
    use std::collections::{HashMap, HashSet};
    let mut seen: HashSet<Bdd> = HashSet::new();
    let mut stack: Vec<Bdd> = roots.to_vec();
    let mut keys: HashMap<(VarId, Bdd, Bdd), Bdd> = HashMap::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || m.is_const(n) {
            continue;
        }
        let v = m.top_var(n);
        let (lo, hi) = (m.low(n), m.high(n));
        assert_ne!(lo, hi, "redundant node {n:?} (var {v})");
        assert!(m.is_live_var(v), "reachable node {n:?} labeled retired var {v}");
        for c in [lo, hi] {
            if !m.is_const(c) {
                let cv = m.top_var(c);
                assert!(
                    m.level_of(v) < m.level_of(cv),
                    "ordering violated: {v}@{} above {cv}@{}",
                    m.level_of(v),
                    m.level_of(cv)
                );
            }
        }
        if let Some(prev) = keys.insert((v, lo, hi), n) {
            panic!("canonicity violated: nodes {prev:?} and {n:?} share key ({v},{lo:?},{hi:?})");
        }
        stack.push(lo);
        stack.push(hi);
    }
}

#[test]
fn fuzz_reorder_gc_preserves_functions() {
    for seed in 1..60u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let nvars = 6 + rng.below(3) as u32; // 6..8
        let mut m = BddManager::new();
        m.reorder_threshold = 20 + rng.below(50) as usize;
        let mut pool: Vec<Bdd> = (0..nvars).map(|v| m.var(v)).collect();
        let mut roots: Vec<(Bdd, Vec<bool>)> = Vec::new();
        for step in 0..200 {
            let op = rng.below(10);
            match op {
                0..=5 => {
                    let a = pool[rng.below(pool.len() as u64) as usize];
                    let b = pool[rng.below(pool.len() as u64) as usize];
                    let f = match rng.below(5) {
                        0 => m.and(a, b),
                        1 => m.or(a, b),
                        2 => m.xor(a, b),
                        3 => m.iff(a, b),
                        _ => m.not(a),
                    };
                    pool.push(f);
                    if pool.len() > 12 {
                        // drop a random non-var element (becomes garbage)
                        let i = nvars as usize + rng.below((pool.len() - nvars as usize) as u64) as usize;
                        pool.swap_remove(i);
                    }
                    if rng.below(4) == 0 {
                        let tt = truth_table(&m, f, nvars);
                        roots.push((f, tt));
                        if roots.len() > 4 {
                            roots.remove(0);
                        }
                    }
                }
                6 => {
                    let mut r: Vec<Bdd> = pool.clone();
                    r.extend(roots.iter().map(|(f, _)| *f));
                    m.gc(&r);
                }
                7 => {
                    let mut r: Vec<Bdd> = pool.clone();
                    r.extend(roots.iter().map(|(f, _)| *f));
                    m.sift(&r);
                }
                8 => {
                    let mut r: Vec<Bdd> = pool.clone();
                    r.extend(roots.iter().map(|(f, _)| *f));
                    m.sift_symmetric(&r);
                }
                _ => {
                    let mut r: Vec<Bdd> = pool.clone();
                    r.extend(roots.iter().map(|(f, _)| *f));
                    m.maybe_reorder(&r);
                }
            }
            // verify
            let all_roots: Vec<Bdd> = pool
                .iter()
                .copied()
                .chain(roots.iter().map(|(f, _)| *f))
                .collect();
            check_invariants(&m, &all_roots);
            for (f, tt) in &roots {
                let got = truth_table(&m, *f, nvars);
                assert_eq!(&got, tt, "seed {seed} step {step} function changed");
            }
        }
    }
}

#[test]
fn fuzz_retirement_with_reorder() {
    // Compose-away style: build functions, compose vars out, retire, sift.
    for seed in 1..40u64 {
        let mut rng = Rng(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
        let nvars = 8u32;
        let mut m = BddManager::new();
        let mut f = BddManager::TRUE;
        for i in 0..nvars / 2 {
            let x = m.var(i);
            let y = m.var(nvars / 2 + i);
            let g = match rng.below(3) {
                0 => m.iff(x, y),
                1 => m.xor(x, y),
                _ => m.or(x, y),
            };
            f = m.and(f, g);
        }
        let tt = truth_table(&m, f, nvars);
        // Compose out a few vars by constants/vars, retire them, sift after each.
        let mut live_tt = tt.clone();
        let mut retired: Vec<u32> = Vec::new();
        for _ in 0..3 {
            let v = rng.below(nvars as u64) as u32;
            if retired.contains(&v) {
                continue;
            }
            let val = rng.below(2) == 1;
            f = m.restrict(f, v, val);
            // update reference tt: fix bit v to val
            live_tt = (0..(1u64 << nvars))
                .map(|bits| {
                    let b = if val { bits | (1 << v) } else { bits & !(1 << v) };
                    live_tt[b as usize]
                })
                .collect();
            m.gc(&[f]);
            m.retire_var(v);
            retired.push(v);
            let stats = m.sift(&[f]);
            let _ = stats;
            check_invariants(&m, &[f]);
            let got = truth_table(&m, f, nvars);
            assert_eq!(got, live_tt, "seed {seed} after retiring {v}");
        }
    }
}
