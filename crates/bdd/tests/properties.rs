//! Property tests for the manager's structural invariants.
//!
//! Each test drives random operation sequences and calls
//! [`BddManager::validate`] — the full canonical-form walker (regular
//! then-edges, reducedness, unique-table ownership, free-list/dead-flag
//! agreement, pin consistency) — after every mutation, so an invariant
//! broken by any apply/compose/GC/sift combination is caught at the op
//! that broke it, not at some later use.

use sbif_bdd::{Bdd, BddManager, VarId};
use sbif_rng::XorShift64;

/// Runs `body` once per seed and reports the failing seed on panic.
fn for_seeds(cases: u64, body: impl Fn(&mut XorShift64)) {
    for seed in 0..cases {
        let mut rng = XorShift64::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            panic!("property failed for seed {seed}: {e:?}");
        }
    }
}

fn truth_table(m: &BddManager, f: Bdd, vars: u32) -> Vec<bool> {
    (0..(1u64 << vars)).map(|bits| m.eval(f, |v| (bits >> v) & 1 == 1)).collect()
}

/// Applies one random operation to the pool and returns the result.
fn random_op(m: &mut BddManager, rng: &mut XorShift64, pool: &[Bdd], nvars: u32) -> Bdd {
    let pick = |rng: &mut XorShift64| pool[rng.below(pool.len() as u64) as usize];
    let f = pick(rng);
    match rng.below(8) {
        0 => m.not(f),
        1 => {
            let g = pick(rng);
            m.and(f, g)
        }
        2 => {
            let g = pick(rng);
            m.or(f, g)
        }
        3 => {
            let g = pick(rng);
            m.xor(f, g)
        }
        4 => {
            let (g, h) = (pick(rng), pick(rng));
            m.ite(f, g, h)
        }
        5 => {
            let v = rng.below(nvars as u64) as VarId;
            let val = rng.next_bool();
            m.restrict(f, v, val)
        }
        6 => {
            let v = rng.below(nvars as u64) as VarId;
            let g = pick(rng);
            m.compose(f, v, g)
        }
        _ => {
            let v = rng.below(nvars as u64) as VarId;
            m.exists(f, v)
        }
    }
}

#[test]
fn invariants_hold_after_every_operation() {
    for_seeds(25, |rng| {
        let nvars = 3 + rng.below(6) as u32; // 3..=8
        let mut m = BddManager::new();
        let mut pool: Vec<Bdd> = vec![BddManager::TRUE, BddManager::FALSE];
        for v in 0..nvars {
            pool.push(m.var(v));
        }
        for _ in 0..60 {
            let r = random_op(&mut m, rng, &pool, nvars);
            m.validate().unwrap_or_else(|e| panic!("invariant broken after op: {e}"));
            pool.push(r);
        }
    });
}

#[test]
fn sift_round_trip_preserves_pinned_roots() {
    for_seeds(25, |rng| {
        let nvars = 4 + rng.below(5) as u32; // 4..=8
        let mut m = BddManager::new();
        let mut pool: Vec<Bdd> = (0..nvars).map(|v| m.var(v)).collect();
        for _ in 0..40 {
            let r = random_op(&mut m, rng, &pool, nvars);
            pool.push(r);
        }
        // Pin a handful of roots; everything else is garbage the sift's
        // internal GC is free to reclaim.
        let roots: Vec<Bdd> = (0..4)
            .map(|_| pool[rng.below(pool.len() as u64) as usize])
            .collect();
        for &r in &roots {
            m.pin(r);
        }
        let before: Vec<Vec<bool>> =
            roots.iter().map(|&r| truth_table(&m, r, nvars)).collect();

        let stats = if rng.next_bool() {
            m.sift(&roots)
        } else {
            m.sift_symmetric(&roots)
        };
        m.validate().unwrap_or_else(|e| panic!("invariant broken after sift: {e}"));
        assert!(
            stats.size_after <= stats.size_before,
            "sifting grew the graph: {} -> {}",
            stats.size_before,
            stats.size_after
        );
        for (i, &r) in roots.iter().enumerate() {
            assert_eq!(
                truth_table(&m, r, nvars),
                before[i],
                "root {i} changed function across sift"
            );
        }
        // And back: a second sift from the new order must also be safe.
        m.sift(&roots);
        m.validate().unwrap_or_else(|e| panic!("invariant broken after re-sift: {e}"));
        for (i, &r) in roots.iter().enumerate() {
            assert_eq!(truth_table(&m, r, nvars), before[i]);
        }
        for &r in &roots {
            m.unpin(r);
        }
        m.gc(&[]);
        m.validate().unwrap();
    });
}

#[test]
fn gc_stress_tiny_tables() {
    // Undersized tables force constant rehashing and recycling: every
    // free-list slot gets reused many times over, so a stale cache entry
    // or a missed unique-table removal surfaces as a validate failure or
    // a corrupted pinned function.
    for_seeds(20, |rng| {
        let nvars = 4 + rng.below(4) as u32;
        let mut m = BddManager::with_table_capacity(16);
        let mut pool: Vec<Bdd> = (0..nvars).map(|v| m.var(v)).collect();
        let mut pinned: Vec<(Bdd, Vec<bool>)> = Vec::new();
        for burst in 0..12 {
            for _ in 0..15 {
                let r = random_op(&mut m, rng, &pool, nvars);
                pool.push(r);
            }
            // Rotate the pinned set: pin one fresh result, unpin an old one.
            let fresh = pool[pool.len() - 1 - rng.below(5) as usize];
            m.pin(fresh);
            pinned.push((fresh, truth_table(&m, fresh, nvars)));
            if pinned.len() > 3 {
                let (old, _) = pinned.remove(0);
                m.unpin(old);
            }
            // Drop every handle, then force a collection with no
            // external roots: only pins may keep nodes alive.
            pool.clear();
            let live_before = m.live_nodes();
            let freed = m.gc(&[]);
            m.validate()
                .unwrap_or_else(|e| panic!("invariant broken after gc (burst {burst}): {e}"));
            assert_eq!(
                m.live_nodes(),
                live_before - freed,
                "gc return value disagrees with live count"
            );
            for (f, tt) in &pinned {
                assert_eq!(&truth_table(&m, *f, nvars), tt, "pinned root corrupted by gc");
            }
            // Rebuild the working pool from fresh vars plus the pinned
            // survivors, so the next burst reuses reclaimed slots.
            for v in 0..nvars {
                pool.push(m.var(v));
            }
            for (f, _) in &pinned {
                pool.push(*f);
            }
        }
        // Dropping every pin must let the graph collapse to nothing.
        for (f, _) in pinned.drain(..) {
            m.unpin(f);
        }
        pool.clear();
        m.gc(&[]);
        m.validate().unwrap();
        // Only the terminal survives.
        assert_eq!(m.live_nodes(), 1, "dead nodes not reclaimed once unpinned");
    });
}

#[test]
fn gc_reclaims_dead_nodes_and_keeps_roots() {
    for_seeds(15, |rng| {
        let nvars = 5;
        let mut m = BddManager::new();
        let pool: Vec<Bdd> = (0..nvars).map(|v| m.var(v)).collect();
        // Build one keeper and a pile of garbage.
        let mut keeper = pool[0];
        for _ in 0..30 {
            let other = pool[rng.below(5) as usize];
            keeper = random_op(&mut m, rng, &[keeper, other], nvars);
        }
        let tt = truth_table(&m, keeper, nvars);
        let mut garbage = pool[1];
        for _ in 0..30 {
            let other = pool[rng.below(5) as usize];
            garbage = random_op(&mut m, rng, &[garbage, other], nvars);
        }
        let live = m.live_nodes();
        let freed = m.gc(&[keeper]);
        assert!(freed > 0, "expected garbage to be reclaimed (live was {live})");
        m.validate().unwrap();
        assert_eq!(truth_table(&m, keeper, nvars), tt);
        // A second collection finds nothing new.
        assert_eq!(m.gc(&[keeper]), 0, "gc is not idempotent");
    });
}
