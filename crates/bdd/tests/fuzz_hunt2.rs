//! Randomized stress tests of the weakest-precondition usage pattern:
//! compose out variables one by one, retire them, reorder, and check
//! the truth table and canonicity invariants after every step.

use sbif_bdd::{Bdd, BddManager};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tt(m: &BddManager, f: Bdd, vars: u32) -> Vec<bool> {
    (0..(1u64 << vars)).map(|b| m.eval(f, |v| (b >> v) & 1 == 1)).collect()
}

fn random_func(m: &mut BddManager, rng: &mut Rng, vars: &[u32], depth: usize) -> Bdd {
    if depth == 0 || vars.is_empty() {
        if vars.is_empty() {
            return if rng.below(2) == 0 { BddManager::TRUE } else { BddManager::FALSE };
        }
        let v = vars[rng.below(vars.len() as u64) as usize];
        let x = m.var(v);
        return if rng.below(2) == 0 { x } else { m.not(x) };
    }
    let a = random_func(m, rng, vars, depth - 1);
    let b = random_func(m, rng, vars, depth - 1);
    match rng.below(5) {
        0 => m.and(a, b),
        1 => m.or(a, b),
        2 => m.xor(a, b),
        3 => m.iff(a, b),
        _ => m.not(a),
    }
}

#[test]
fn fuzz_wpc_style_compose_retire_reorder() {
    for seed in 1..80u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let nvars = 10u32;
        let mut m = BddManager::new();
        m.reorder_threshold = 8 + rng.below(40) as usize;
        let all: Vec<u32> = (0..nvars).collect();
        let mut f = random_func(&mut m, &mut rng, &all, 4);
        let mut reference = tt(&m, f, nvars); // truth table over all 10 vars
        // Compose out vars 9,8,...,4 one by one with functions over lower vars.
        for v in (4..nvars).rev() {
            let lower: Vec<u32> = (0..v).collect();
            let g = random_func(&mut m, &mut rng, &lower, 3);
            let gtt = tt(&m, g, nvars);
            f = m.compose(f, v, g);
            // reference[bits] := reference[bits with bit v := g(bits)]
            reference = (0..(1u64 << nvars))
                .map(|bits| {
                    let gv = gtt[bits as usize];
                    let b = if gv { bits | (1 << v) } else { bits & !(1 << v) };
                    reference[b as usize]
                })
                .collect();
            m.gc(&[f]);
            m.retire_var(v);
            m.maybe_reorder(&[f]);
            let got = tt(&m, f, nvars);
            assert_eq!(got, reference, "seed {seed} after composing out var {v}");
            // canonicity probe: double negation must return the same node
            let nf = m.not(f);
            let nnf = m.not(nf);
            assert_eq!(nnf, f, "seed {seed}: double negation changed identity");
        }
        // Force explicit sifting passes at the end and re-check.
        m.sift(&[f]);
        assert_eq!(tt(&m, f, nvars), reference, "seed {seed} after final sift");
        m.sift_symmetric(&[f]);
        assert_eq!(tt(&m, f, nvars), reference, "seed {seed} after sym sift");
    }
}

#[test]
fn fuzz_canonicity_equal_functions_share_ids() {
    for seed in 1..60u64 {
        let mut rng = Rng(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
        let nvars = 7u32;
        let mut m = BddManager::new();
        m.reorder_threshold = 10;
        let all: Vec<u32> = (0..nvars).collect();
        let mut roots: Vec<Bdd> = Vec::new();
        for _ in 0..12 {
            let f = random_func(&mut m, &mut rng, &all, 3);
            roots.push(f);
            m.maybe_reorder(&roots);
            if rng.below(3) == 0 {
                m.gc(&roots);
            }
            // After each mutation, rebuild every root's function from its
            // truth table via Shannon expansion and demand the identical id.
            for &r in &roots {
                let t = tt(&m, r, nvars);
                let rebuilt = from_tt(&mut m, &t, nvars);
                assert_eq!(rebuilt, r, "seed {seed}: canonicity violated");
            }
        }
    }
}

/// Builds the canonical BDD for a truth table bottom-up *through the
/// public API*; if the manager is canonical this returns the same node id
/// as any existing BDD of the same function.
fn from_tt(m: &mut BddManager, t: &[bool], nvars: u32) -> Bdd {
    // order-independent: use ite over var BDDs from the top of the current order
    fn go(m: &mut BddManager, t: &[bool], vars: &[u32]) -> Bdd {
        if t.iter().all(|&b| b) {
            return BddManager::TRUE;
        }
        if t.iter().all(|&b| !b) {
            return BddManager::FALSE;
        }
        let v = vars[0];
        // split on v: entries where bit v of the index is 0/1
        let mut t0 = Vec::with_capacity(t.len() / 2);
        let mut t1 = Vec::with_capacity(t.len() / 2);
        for (i, &b) in t.iter().enumerate() {
            if (i >> v) & 1 == 1 {
                t1.push(b);
            } else {
                t0.push(b);
            }
        }
        // Reindex: removing bit v compacts indices; build sub-tables over
        // remaining vars by brute force instead (simpler): evaluate.
        let lo = go(m, &t0, &vars[1..]);
        let hi = go(m, &t1, &vars[1..]);
        let xv = m.var(v);
        m.ite(xv, hi, lo)
    }
    // vars sorted descending so that removing the highest bit keeps
    // index compaction consistent.
    let vars: Vec<u32> = (0..nvars).rev().collect();
    go(m, t, &vars)
}
