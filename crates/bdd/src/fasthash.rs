//! A fast, non-cryptographic hasher for the unique and computed tables.
//!
//! BDD packages live and die by hash-table throughput; the standard
//! library's SipHash is DoS-resistant but several times slower than
//! needed here. This is the classic Fx multiply-mix (as used by rustc),
//! implemented locally because no hashing crate is in the allowed
//! dependency set. Keys are fixed-width integers produced by our own
//! code, so HashDoS is not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher over machine words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Mixes three words into one hash — the raw primitive behind the
/// open-addressed unique and computed tables, where going through the
/// `Hasher` trait (state init + finish per probe) would cost more than
/// the probe itself.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = a.wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ b).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ c).wrapping_mul(SEED);
    // Finalize: fold the high bits down so power-of-two masking sees
    // the whole word.
    h ^ (h >> 32)
}

/// `HashMap` build-hasher using [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_consecutive_keys() {
        // Consecutive integers must not collide in the low bits (the
        // part HashMap actually uses).
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() & 0xFFFF);
        }
        // With 65536 buckets and 10k keys, a decent hash keeps most
        // buckets distinct.
        assert!(seen.len() > 8_000, "only {} distinct low-16 hashes", seen.len());
    }

    #[test]
    fn hashmap_roundtrip() {
        let mut m: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2, i * 3), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 2, i * 3)), Some(&i));
        }
    }
}
