//! Dynamic variable reordering: adjacent-level swaps, sifting and
//! symmetric sifting (Panda/Somenzi \[26\], simplified).
//!
//! Node indices are stable across reordering: a node keeps its identity
//! (and the pseudo-Boolean function it represents); only its `var` label
//! and children may be rewritten by the classic in-place swap of two
//! adjacent levels. Canonicity guarantees the rewritten upper-level nodes
//! can never collide with retained lower-level nodes — two distinct nodes
//! never represent the same function.

use crate::manager::{Bdd, BddManager, VarId};

/// Statistics of one reordering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Live nodes before the pass.
    pub size_before: usize,
    /// Live nodes after the pass.
    pub size_after: usize,
    /// Adjacent-level swaps performed.
    pub swaps: u64,
    /// Variables (or symmetry groups) sifted.
    pub sifted: usize,
    /// Symmetry groups detected (symmetric sifting only).
    pub groups: usize,
}

/// Transient state of a reordering pass.
struct ReorderEnv {
    /// Reference counts (parent edges + external roots).
    rc: Vec<u32>,
    /// Node lists per level; entries may be stale (dead or relabeled)
    /// and are filtered lazily.
    subtables: Vec<Vec<Bdd>>,
    /// Exact live-node count, maintained across swaps.
    cur_size: usize,
    swaps: u64,
}

impl BddManager {
    /// Builds the reordering environment: refcounts and per-level node
    /// lists. Call after [`gc`](Self::gc) so no dead nodes remain.
    fn reorder_env(&mut self, roots: &[Bdd]) -> ReorderEnv {
        let nlevels = self.level2var.len();
        let mut rc = vec![0u32; self.nodes.len()];
        let mut subtables = vec![Vec::new(); nlevels];
        let mut live = 0usize;
        for i in 2..self.nodes.len() {
            if self.dead[i] {
                continue;
            }
            let n = self.nodes[i];
            if n.var == crate::manager::TERMINAL_VAR {
                continue;
            }
            live += 1;
            rc[n.low.index()] += 1;
            rc[n.high.index()] += 1;
            subtables[self.level_of(n.var) as usize].push(Bdd(i as u32));
        }
        for r in roots {
            rc[r.index()] += 1;
        }
        ReorderEnv { rc, subtables, cur_size: live, swaps: 0 }
    }

    fn rc_incr(env: &mut ReorderEnv, f: Bdd) {
        if f.index() >= env.rc.len() {
            env.rc.resize(f.index() + 1, 0);
        }
        env.rc[f.index()] += 1;
    }

    /// Decrements a reference and recursively kills nodes whose count
    /// drops to zero.
    fn rc_decr_kill(&mut self, env: &mut ReorderEnv, f: Bdd) {
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if self.is_const(n) {
                continue;
            }
            env.rc[n.index()] -= 1;
            if env.rc[n.index()] == 0 {
                let node = self.nodes[n.index()];
                self.unique.remove(&(node.var, node.low, node.high));
                self.dead[n.index()] = true;
                // Neutralize the stored key so a later allocation of the
                // same (var, low, high) cannot be shadowed by this corpse
                // at the final GC.
                self.nodes[n.index()] =
                    crate::manager::Node { var: crate::manager::TERMINAL_VAR, low: n, high: n };
                env.cur_size -= 1;
                stack.push(node.low);
                stack.push(node.high);
            }
        }
    }

    /// Swaps the variables at `lvl` and `lvl + 1` in place.
    fn swap_levels(&mut self, env: &mut ReorderEnv, lvl: usize) {
        env.swaps += 1;
        let u = self.level2var[lvl];
        let w = self.level2var[lvl + 1];
        // Update the permutation first so `mk`'s level invariant holds
        // for the nodes created below.
        self.level2var[lvl] = w;
        self.level2var[lvl + 1] = u;
        self.var2level[u as usize] = lvl as u32 + 1;
        self.var2level[w as usize] = lvl as u32;

        let old_u = std::mem::take(&mut env.subtables[lvl]);
        let old_w = std::mem::take(&mut env.subtables[lvl + 1]);
        let mut upper: Vec<Bdd> = old_w; // w-nodes keep identity, move up
        let mut lower: Vec<Bdd> = Vec::with_capacity(old_u.len());

        let mut created: Vec<Bdd> = Vec::new();
        self.mk_log = Some(Vec::new());
        for n in old_u {
            if self.dead[n.index()] || self.nodes[n.index()].var != u {
                continue; // stale entry
            }
            let node = self.nodes[n.index()];
            let (f0, f1) = (node.low, node.high);
            let f0_w = !self.is_const(f0) && self.nodes[f0.index()].var == w;
            let f1_w = !self.is_const(f1) && self.nodes[f1.index()].var == w;
            if !f0_w && !f1_w {
                lower.push(n);
                continue;
            }
            let (f00, f01) = if f0_w {
                (self.nodes[f0.index()].low, self.nodes[f0.index()].high)
            } else {
                (f0, f0)
            };
            let (f10, f11) = if f1_w {
                (self.nodes[f1.index()].low, self.nodes[f1.index()].high)
            } else {
                (f1, f1)
            };
            let g0 = self.mk(u, f00, f10);
            let g1 = self.mk(u, f01, f11);
            let fresh = self.mk_log.as_mut().map(std::mem::take).unwrap_or_default();
            for nn in fresh {
                if nn.index() >= env.rc.len() {
                    env.rc.resize(nn.index() + 1, 0);
                }
                env.rc[nn.index()] = 0; // slot may be recycled: reset
                env.cur_size += 1;
                // The fresh node's child edges are new references.
                let child = self.nodes[nn.index()];
                Self::rc_incr(env, child.low);
                Self::rc_incr(env, child.high);
                created.push(nn);
            }
            Self::rc_incr(env, g0);
            Self::rc_incr(env, g1);
            self.unique.remove(&(u, f0, f1));
            self.nodes[n.index()] = crate::manager::Node { var: w, low: g0, high: g1 };
            debug_assert!(
                !self.unique.contains_key(&(w, g0, g1)),
                "swap collision impossible by canonicity"
            );
            self.unique.insert((w, g0, g1), n);
            self.rc_decr_kill(env, f0);
            self.rc_decr_kill(env, f1);
            upper.push(n);
        }
        self.mk_log = None;
        lower.extend(created);
        env.subtables[lvl] = upper;
        env.subtables[lvl + 1] = lower;
    }

    /// Live nodes currently at `lvl` (filtering stale entries).
    fn subtable_size(&self, env: &ReorderEnv, lvl: usize) -> usize {
        let v = self.level2var[lvl];
        env.subtables[lvl]
            .iter()
            .filter(|n| !self.dead[n.index()] && self.nodes[n.index()].var == v)
            .count()
    }

    /// Moves the variable group occupying levels `[top, top+len)` down by
    /// one level (bubbling the variable below it through the group).
    fn group_down(&mut self, env: &mut ReorderEnv, top: usize, len: usize) {
        for l in (top..top + len).rev() {
            self.swap_levels(env, l);
        }
    }

    /// Moves the group up by one level.
    fn group_up(&mut self, env: &mut ReorderEnv, top: usize, len: usize) {
        for l in top - 1..top - 1 + len {
            self.swap_levels(env, l);
        }
    }

    /// Sifts one group of `len` adjacent variables starting at level
    /// `start` to its locally optimal position.
    fn sift_group(&mut self, env: &mut ReorderEnv, start: usize, len: usize, max_swaps: u64) {
        let nlevels = self.level2var.len();
        let mut top = start;
        let mut best_size = env.cur_size;
        let mut best_top = top;
        let max_growth = env.cur_size + env.cur_size / 5 + 16;
        // Phase 1: down to the bottom.
        while top + len < nlevels && env.swaps < max_swaps {
            self.group_down(env, top, len);
            top += 1;
            if env.cur_size < best_size {
                best_size = env.cur_size;
                best_top = top;
            }
            if env.cur_size > max_growth {
                break;
            }
        }
        // Phase 2: up to the top.
        while top > 0 && env.swaps < max_swaps {
            self.group_up(env, top, len);
            top -= 1;
            if env.cur_size < best_size {
                best_size = env.cur_size;
                best_top = top;
            }
            if env.cur_size > max_growth && top < best_top {
                break;
            }
        }
        // Phase 3: return to the best position seen.
        while top < best_top {
            self.group_down(env, top, len);
            top += 1;
        }
        while top > best_top {
            self.group_up(env, top, len);
            top -= 1;
        }
    }

    /// Sifting reordering: moves each variable (largest subtables first,
    /// up to `max_vars` of them) through the whole order and leaves it at
    /// the position minimizing the live node count.
    ///
    /// `roots` are the BDDs that must stay alive; all other nodes may be
    /// collected.
    pub fn sift(&mut self, roots: &[Bdd]) -> ReorderStats {
        self.reorder_pass(roots, false)
    }

    /// Symmetric sifting: like [`sift`](Self::sift), but adjacent
    /// variables detected as symmetric are grouped and moved together.
    pub fn sift_symmetric(&mut self, roots: &[Bdd]) -> ReorderStats {
        self.reorder_pass(roots, true)
    }

    fn reorder_pass(&mut self, roots: &[Bdd], symmetric: bool) -> ReorderStats {
        self.cache.clear();
        self.gc(roots);
        let mut env = self.reorder_env(roots);
        let mut stats = ReorderStats {
            size_before: env.cur_size,
            ..ReorderStats::default()
        };
        let nlevels = self.level2var.len();
        if nlevels < 2 {
            stats.size_after = env.cur_size;
            return stats;
        }
        // Variables by decreasing subtable size.
        let mut by_size: Vec<(usize, VarId)> = (0..nlevels)
            .map(|l| (self.subtable_size(&env, l), self.level2var[l]))
            .filter(|&(s, _)| s >= 2)
            .collect();
        by_size.sort_unstable_by_key(|&(size, _)| std::cmp::Reverse(size));
        let max_vars = 64;
        let max_swaps = 2_000_000u64;
        let mut processed: std::collections::HashSet<VarId> = std::collections::HashSet::new();

        for &(_, v) in by_size.iter().take(max_vars) {
            if env.swaps >= max_swaps || processed.contains(&v) {
                continue;
            }
            let mut top = self.var2level[v as usize] as usize;
            let mut len = 1;
            if symmetric {
                // Grow the group with adjacent symmetric variables.
                while top + len < nlevels && self.adjacent_symmetric(&env, top + len - 1) {
                    len += 1;
                }
                while top > 0 && self.adjacent_symmetric(&env, top - 1) {
                    top -= 1;
                    len += 1;
                }
                if len > 1 {
                    stats.groups += 1;
                }
            }
            for l in top..top + len {
                processed.insert(self.level2var[l]);
            }
            self.sift_group(&mut env, top, len, max_swaps);
            stats.sifted += 1;
        }
        stats.swaps = env.swaps;
        stats.size_after = env.cur_size;
        self.cache.clear();
        self.gc(roots);
        stats
    }

    /// Heuristic check that the variables at `lvl` and `lvl + 1` are
    /// (positively) symmetric in every function through them: every
    /// upper-level node must satisfy `f01 == f10`.
    fn adjacent_symmetric(&self, env: &ReorderEnv, lvl: usize) -> bool {
        if lvl + 1 >= self.level2var.len() {
            return false;
        }
        let u = self.level2var[lvl];
        let w = self.level2var[lvl + 1];
        let mut any = false;
        for n in &env.subtables[lvl] {
            if self.dead[n.index()] || self.nodes[n.index()].var != u {
                continue;
            }
            let node = self.nodes[n.index()];
            let f01 = if !self.is_const(node.low) && self.nodes[node.low.index()].var == w {
                self.nodes[node.low.index()].high
            } else {
                node.low
            };
            let f10 = if !self.is_const(node.high) && self.nodes[node.high.index()].var == w {
                self.nodes[node.high.index()].low
            } else {
                node.high
            };
            if f01 != f10 {
                return false;
            }
            any = true;
        }
        any
    }

    /// Triggers a symmetric-sifting pass when the live node count has
    /// crossed [`reorder_threshold`](Self::reorder_threshold) (the
    /// threshold doubles after each pass, CUDD-style). Returns the pass
    /// statistics if reordering ran.
    pub fn maybe_reorder(&mut self, roots: &[Bdd]) -> Option<ReorderStats> {
        if self.live_nodes() <= self.reorder_threshold {
            return None;
        }
        let stats = self.sift_symmetric(roots);
        // Re-arm at twice the post-reorder size (CUDD's policy), but
        // never below the configured floor — with variable retirement
        // keeping the level set small, frequent passes stay affordable
        // and are what keep the traversal's intermediate BDDs compact.
        self.reorder_threshold = (stats.size_after * 2).max(self.reorder_threshold);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the interleaved-vs-separated comparator example: with a bad
    /// order (all a's above all b's) `a == b` over k bits is exponential;
    /// sifting must shrink it drastically.
    fn equality_bdd(m: &mut BddManager, k: u32, interleave: bool) -> Bdd {
        let mut f = BddManager::TRUE;
        for i in 0..k {
            let (va, vb) = if interleave { (2 * i, 2 * i + 1) } else { (i, k + i) };
            let a = m.var(va);
            let b = m.var(vb);
            let eq = m.iff(a, b);
            f = m.and(f, eq);
        }
        f
    }

    /// Collects a function's truth table over `vars` variables.
    fn truth_table(m: &BddManager, f: Bdd, vars: u32) -> Vec<bool> {
        (0..(1u32 << vars)).map(|bits| m.eval(f, |v| (bits >> v) & 1 == 1)).collect()
    }

    #[test]
    fn swap_preserves_functions() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        let g = m.or(a, c);
        let tf = truth_table(&m, f, 3);
        let tg = truth_table(&m, g, 3);
        let roots = vec![f, g, a, b, c];
        let mut env = m.reorder_env(&roots);
        for lvl in [0usize, 1, 0, 1, 1, 0] {
            m.swap_levels(&mut env, lvl);
            assert_eq!(truth_table(&m, f, 3), tf, "f changed after swap at {lvl}");
            assert_eq!(truth_table(&m, g, 3), tg, "g changed after swap at {lvl}");
        }
    }

    #[test]
    fn swap_size_bookkeeping_is_exact() {
        let mut m = BddManager::new();
        let f = equality_bdd(&mut m, 4, false);
        let roots = vec![f];
        m.gc(&roots);
        let mut env = m.reorder_env(&roots);
        for lvl in 0..7 {
            m.swap_levels(&mut env, lvl);
            // Recount live nodes from scratch and compare.
            let recount: usize = (0..m.level2var.len()).map(|l| m.subtable_size(&env, l)).sum();
            assert_eq!(env.cur_size, recount, "after swap at {lvl}");
        }
    }

    #[test]
    fn sifting_shrinks_bad_equality_order() {
        let k = 6;
        let mut m = BddManager::new();
        let f = equality_bdd(&mut m, k, false);
        let tt = truth_table(&m, f, 2 * k);
        let before = m.size(f);
        let stats = m.sift(&[f]);
        let after = m.size(f);
        assert_eq!(truth_table(&m, f, 2 * k), tt, "sifting must preserve the function");
        // Separated order needs ~3·2^k nodes; interleaved needs 3k+2.
        assert!(after < before / 4, "sift: {before} -> {after} ({stats:?})");
        assert!(after <= 3 * (k as usize) + 2 + 2, "near-optimal expected, got {after}");
    }

    #[test]
    fn symmetric_sifting_groups_symmetric_vars() {
        // Totally symmetric function: x0 + x1 + x2 + x3 >= 2 (majority-ish).
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let mut f = BddManager::FALSE;
        for i in 0..4 {
            for j in (i + 1)..4 {
                let p = m.and(vars[i], vars[j]);
                f = m.or(f, p);
            }
        }
        let tt = truth_table(&m, f, 4);
        let stats = m.sift_symmetric(&[f]);
        assert_eq!(truth_table(&m, f, 4), tt);
        assert!(stats.groups >= 1, "expected a symmetry group, got {stats:?}");
    }

    #[test]
    fn maybe_reorder_triggers_on_threshold() {
        let mut m = BddManager::new();
        m.reorder_threshold = 50;
        let f = equality_bdd(&mut m, 6, false);
        let stats = m.maybe_reorder(&[f]);
        assert!(stats.is_some());
        assert!(m.reorder_threshold >= 100 || m.live_nodes() * 2 <= 100);
        // Second call right away should not re-trigger (below threshold).
        assert!(m.maybe_reorder(&[f]).is_none());
    }

    #[test]
    fn gc_after_reorder_keeps_roots_valid() {
        let mut m = BddManager::new();
        let f = equality_bdd(&mut m, 5, false);
        let tt = truth_table(&m, f, 10);
        m.sift(&[f]);
        m.gc(&[f]);
        assert_eq!(truth_table(&m, f, 10), tt);
        // Manager stays usable for new operations.
        let x = m.var(20);
        let g = m.and(f, x);
        assert!(m.eval(g, |_| true));
    }
}
