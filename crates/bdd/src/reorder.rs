//! Dynamic variable reordering: adjacent-level swaps, sifting and
//! symmetric sifting (Panda/Somenzi \[26\], simplified), upgraded with an
//! interaction matrix and lower-bound pruning.
//!
//! Node indices are stable across reordering: a node keeps its identity
//! (and the Boolean function it represents); only its `var` label and
//! children may be rewritten by the classic in-place swap of two adjacent
//! levels. Canonicity guarantees the rewritten upper-level nodes can
//! never collide with retained lower-level nodes — two distinct nodes
//! never represent the same function.
//!
//! With complement edges the swap stays canonical for free: the rewritten
//! node's then-edge `g1 = mk(u, f01, f11)` is always regular, because
//! `f11` — a stored then-child, or the then-edge itself — is regular by
//! the canonical-form invariant, so `mk` never has to complement it.
//!
//! Two classic optimizations prune work that provably cannot pay off:
//!
//! * **Interaction matrix** — variables `u`, `w` *interact* when they
//!   co-occur in the support of some root. Swapping two adjacent
//!   non-interacting variables can never change the graph (no `u`-node
//!   has a `w`-child), so those swaps reduce to a permutation update.
//!   Sifting stops descending (or ascending) once no interacting
//!   variable remains in that direction.
//! * **Lower-bound pruning** — once the group has moved past a level,
//!   the levels behind it are frozen for the rest of that phase (swap
//!   kills only cascade *downward*), so `frozen + 1` bounds every size
//!   still reachable; when that bound meets the best size already seen,
//!   the phase ends early.

use crate::manager::{Bdd, BddManager, Node, VarId, TERMINAL_VAR};

/// Statistics of one reordering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Live nodes before the pass.
    pub size_before: usize,
    /// Live nodes after the pass.
    pub size_after: usize,
    /// Adjacent-level swaps performed (fast-path swaps included).
    pub swaps: u64,
    /// Variables (or symmetry groups) sifted.
    pub sifted: usize,
    /// Symmetry groups detected (symmetric sifting only).
    pub groups: usize,
}

/// Symmetric bit-matrix of variable interaction, indexed by a dense
/// mapping fixed at pass start (variable *identity*, not level, so the
/// matrix survives every swap).
struct Interaction {
    /// VarId → dense index; `u32::MAX` for retired/undeclared variables.
    dense: Vec<u32>,
    bits: Vec<u64>,
    n: usize,
}

impl Interaction {
    fn interacts(&self, u: VarId, w: VarId) -> bool {
        let (a, b) = (self.dense[u as usize], self.dense[w as usize]);
        if a == u32::MAX || b == u32::MAX {
            return false;
        }
        let k = a as usize * self.n + b as usize;
        self.bits[k >> 6] >> (k & 63) & 1 == 1
    }

    fn mark(&mut self, a: usize, b: usize) {
        for k in [a * self.n + b, b * self.n + a] {
            self.bits[k >> 6] |= 1 << (k & 63);
        }
    }
}

/// Transient state of a reordering pass.
struct ReorderEnv {
    /// Reference counts (parent edges + external roots), by node index.
    rc: Vec<u32>,
    /// Node-index lists per level; entries may be stale (dead or
    /// relabeled) and are filtered lazily.
    subtables: Vec<Vec<u32>>,
    /// Exact live-node count per level, maintained across swaps.
    sizes: Vec<usize>,
    /// Exact total live-node count, maintained across swaps.
    cur_size: usize,
    swaps: u64,
    /// When present, enables the non-interacting fast path and the
    /// sift-range clamping.
    interaction: Option<Interaction>,
}

impl BddManager {
    /// Builds the reordering environment: refcounts and per-level node
    /// lists. Call after [`gc`](Self::gc) so no dead nodes remain.
    fn reorder_env(&mut self, roots: &[Bdd]) -> ReorderEnv {
        let nlevels = self.level2var.len();
        let mut rc = vec![0u32; self.nodes.len()];
        let mut subtables = vec![Vec::new(); nlevels];
        let mut sizes = vec![0usize; nlevels];
        let mut live = 0usize;
        for i in 1..self.nodes.len() {
            if self.dead[i] {
                continue;
            }
            let n = self.nodes[i];
            if n.var == TERMINAL_VAR {
                continue;
            }
            live += 1;
            rc[n.low.index()] += 1;
            rc[n.high.index()] += 1;
            let lvl = self.level_of(n.var) as usize;
            subtables[lvl].push(i as u32);
            sizes[lvl] += 1;
        }
        for r in roots {
            rc[r.index()] += 1;
        }
        ReorderEnv { rc, subtables, sizes, cur_size: live, swaps: 0, interaction: None }
    }

    /// Marks every variable pair co-occurring in a root's support.
    fn interaction_matrix(&self, roots: &[Bdd]) -> Interaction {
        let n = self.level2var.len();
        let mut dense = vec![u32::MAX; self.var2level.len()];
        for (l, &v) in self.level2var.iter().enumerate() {
            dense[v as usize] = l as u32;
        }
        let mut im = Interaction { dense, bits: vec![0u64; (n * n).div_ceil(64)], n };
        for &r in roots {
            let sup: Vec<usize> =
                self.support(r).iter().map(|&v| im.dense[v as usize] as usize).collect();
            for (i, &a) in sup.iter().enumerate() {
                for &b in &sup[i + 1..] {
                    im.mark(a, b);
                }
            }
        }
        im
    }

    fn rc_incr(env: &mut ReorderEnv, f: Bdd) {
        if f.index() >= env.rc.len() {
            env.rc.resize(f.index() + 1, 0);
        }
        env.rc[f.index()] += 1;
    }

    /// Decrements a reference and recursively kills nodes whose count
    /// drops to zero. Corpses are removed from the unique table and
    /// neutralized (var = terminal sentinel, self-loop children) but NOT
    /// pushed to the free list — recycling indices mid-pass could alias
    /// stale subtable entries; the final [`gc`](Self::gc) sweeps them.
    fn rc_decr_kill(&mut self, env: &mut ReorderEnv, f: Bdd) {
        let mut stack = vec![f];
        while let Some(e) = stack.pop() {
            if self.is_const(e) {
                continue;
            }
            let i = e.index();
            env.rc[i] -= 1;
            if env.rc[i] == 0 {
                let node = self.nodes[i];
                self.unique_remove(node.var, node.low, node.high, i as u32);
                env.sizes[self.level_of(node.var) as usize] -= 1;
                env.cur_size -= 1;
                // The corpse keeps dead == false (that flag means "on
                // the free list"); its terminal-sentinel var is what
                // marks it for the final gc's sweep.
                let this = Bdd::edge(i as u32, false);
                self.nodes[i] = Node { var: TERMINAL_VAR, low: this, high: this };
                stack.push(node.low);
                stack.push(node.high);
            }
        }
    }

    /// Swaps the variables at `lvl` and `lvl + 1` in place.
    fn swap_levels(&mut self, env: &mut ReorderEnv, lvl: usize) {
        env.swaps += 1;
        let u = self.level2var[lvl];
        let w = self.level2var[lvl + 1];
        // Update the permutation first so `mk`'s level invariant holds
        // for the nodes created below.
        self.level2var[lvl] = w;
        self.level2var[lvl + 1] = u;
        self.var2level[u as usize] = lvl as u32 + 1;
        self.var2level[w as usize] = lvl as u32;

        // Fast path: non-interacting variables share no node cone, so no
        // u-node has a w-child and the swap is a pure level relabeling.
        if let Some(im) = &env.interaction {
            if !im.interacts(u, w) {
                debug_assert!(
                    env.subtables[lvl].iter().all(|&i| {
                        let i = i as usize;
                        self.dead[i] || self.nodes[i].var != u || {
                            let n = self.nodes[i];
                            [n.low, n.high].iter().all(|c| {
                                self.is_const(*c) || self.nodes[c.index()].var != w
                            })
                        }
                    }),
                    "non-interacting fast path taken but a {u}-node has a {w}-child"
                );
                env.subtables.swap(lvl, lvl + 1);
                env.sizes.swap(lvl, lvl + 1);
                return;
            }
        }

        let old_u = std::mem::take(&mut env.subtables[lvl]);
        let old_w = std::mem::take(&mut env.subtables[lvl + 1]);
        // w-nodes keep their identity and move up a level wholesale; the
        // per-level counts are rebuilt from the constituents (later kills
        // of w-nodes decrement sizes[lvl], their new home).
        let live_w = old_w
            .iter()
            .filter(|&&i| !self.dead[i as usize] && self.nodes[i as usize].var == w)
            .count();
        env.sizes[lvl] = live_w;
        env.sizes[lvl + 1] = 0;
        let mut upper: Vec<u32> = old_w;
        let mut lower: Vec<u32> = Vec::with_capacity(old_u.len());

        self.mk_log = Some(Vec::new());
        for i in old_u {
            if self.dead[i as usize] || self.nodes[i as usize].var != u {
                continue; // stale entry
            }
            let node = self.nodes[i as usize];
            let (f0, f1) = (node.low, node.high);
            let f0_w = !self.is_const(f0) && self.nodes[f0.index()].var == w;
            let f1_w = !self.is_const(f1) && self.nodes[f1.index()].var == w;
            if !f0_w && !f1_w {
                // Keeper: stays labelled u, which now lives at lvl + 1.
                lower.push(i);
                env.sizes[lvl + 1] += 1;
                continue;
            }
            // Semantic grandchildren. f0 may carry a complement bit that
            // distributes onto its cofactors; f1 (and hence f11) is
            // regular by canonical form.
            let (f00, f01) = if f0_w {
                let p = f0.0 & 1;
                let c = self.nodes[f0.index()];
                (c.low.xor_complement(p), c.high.xor_complement(p))
            } else {
                (f0, f0)
            };
            let (f10, f11) = if f1_w {
                let c = self.nodes[f1.index()];
                (c.low, c.high)
            } else {
                (f1, f1)
            };
            let g0 = self.mk(u, f00, f10);
            let g1 = self.mk(u, f01, f11);
            debug_assert!(!g1.is_complement(), "then-edge must stay regular across a swap");
            let fresh = self.mk_log.as_mut().map(std::mem::take).unwrap_or_default();
            for ni in fresh {
                if ni as usize >= env.rc.len() {
                    env.rc.resize(ni as usize + 1, 0);
                }
                env.rc[ni as usize] = 0; // slot may be recycled: reset
                env.cur_size += 1;
                env.sizes[lvl + 1] += 1;
                // The fresh node's child edges are new references.
                let child = self.nodes[ni as usize];
                Self::rc_incr(env, child.low);
                Self::rc_incr(env, child.high);
                lower.push(ni);
            }
            Self::rc_incr(env, g0);
            Self::rc_incr(env, g1);
            self.unique_remove(u, f0, f1, i);
            self.nodes[i as usize] = Node { var: w, low: g0, high: g1 };
            self.unique_insert_new(w, g0, g1, i);
            self.rc_decr_kill(env, f0);
            self.rc_decr_kill(env, f1);
            upper.push(i);
            env.sizes[lvl] += 1;
        }
        self.mk_log = None;
        env.subtables[lvl] = upper;
        env.subtables[lvl + 1] = lower;
    }

    /// Live nodes currently at `lvl` (filtering stale entries) — the
    /// slow recount the tests check the incremental counters against.
    #[cfg(test)]
    fn subtable_size(&self, env: &ReorderEnv, lvl: usize) -> usize {
        let v = self.level2var[lvl];
        env.subtables[lvl]
            .iter()
            .filter(|&&i| !self.dead[i as usize] && self.nodes[i as usize].var == v)
            .count()
    }

    /// Moves the variable group occupying levels `[top, top+len)` down by
    /// one level (bubbling the variable below it up through the group).
    fn group_down(&mut self, env: &mut ReorderEnv, top: usize, len: usize) {
        for l in (top..top + len).rev() {
            self.swap_levels(env, l);
        }
    }

    /// Moves the group up by one level.
    fn group_up(&mut self, env: &mut ReorderEnv, top: usize, len: usize) {
        for l in top - 1..top - 1 + len {
            self.swap_levels(env, l);
        }
    }

    /// Sifts one group of `len` adjacent variables starting at level
    /// `start` to its locally optimal position.
    fn sift_group(&mut self, env: &mut ReorderEnv, start: usize, len: usize, max_swaps: u64) {
        let nlevels = self.level2var.len();
        let group: Vec<VarId> = (start..start + len).map(|l| self.level2var[l]).collect();
        let mut top = start;
        let mut best_size = env.cur_size;
        let mut best_top = top;
        let max_growth = env.cur_size + env.cur_size / 5 + 16;
        let interacts_group = |env: &ReorderEnv, v: VarId| match &env.interaction {
            Some(im) => group.iter().any(|&g| im.interacts(g, v)),
            None => true,
        };

        // Phase 1: down toward the bottom — but only while an interacting
        // variable remains below (past the last one, no swap can change
        // the size), and only while the frozen prefix leaves room for an
        // improvement.
        let mut remaining_below = (top + len..nlevels)
            .filter(|&l| interacts_group(env, self.level2var[l]))
            .count();
        while top + len < nlevels && remaining_below > 0 && env.swaps < max_swaps {
            self.group_down(env, top, len);
            top += 1;
            if interacts_group(env, self.level2var[top - 1]) {
                remaining_below -= 1;
            }
            if env.cur_size < best_size {
                best_size = env.cur_size;
                best_top = top;
            }
            if env.cur_size > max_growth {
                break;
            }
            // Levels above the group are frozen for the rest of the
            // descent (kills only cascade downward), so any still
            // reachable size is at least prefix + 1.
            let prefix: usize = env.sizes[..top].iter().sum();
            if prefix + 1 >= best_size {
                break;
            }
        }
        // Phase 2: up toward the top, with the mirrored clamp and bound.
        let mut remaining_above =
            (0..top).filter(|&l| interacts_group(env, self.level2var[l])).count();
        while top > 0 && remaining_above > 0 && env.swaps < max_swaps {
            self.group_up(env, top, len);
            top -= 1;
            if interacts_group(env, self.level2var[top + len]) {
                remaining_above -= 1;
            }
            if env.cur_size < best_size {
                best_size = env.cur_size;
                best_top = top;
            }
            if env.cur_size > max_growth && top < best_top {
                break;
            }
            let suffix: usize = env.sizes[top + len..].iter().sum();
            if suffix + 1 >= best_size {
                break;
            }
        }
        // Phase 3: return to the best position seen.
        while top < best_top {
            self.group_down(env, top, len);
            top += 1;
        }
        while top > best_top {
            self.group_up(env, top, len);
            top -= 1;
        }
    }

    /// Sifting reordering: moves each variable (largest subtables first,
    /// up to `max_vars` of them) through the whole order and leaves it at
    /// the position minimizing the live node count.
    ///
    /// `roots` are the BDDs that must stay alive; all other nodes may be
    /// collected. [`pin`](Self::pin)ned nodes are implicit roots.
    pub fn sift(&mut self, roots: &[Bdd]) -> ReorderStats {
        self.reorder_pass(roots, false)
    }

    /// Symmetric sifting: like [`sift`](Self::sift), but adjacent
    /// variables detected as symmetric are grouped and moved together.
    pub fn sift_symmetric(&mut self, roots: &[Bdd]) -> ReorderStats {
        self.reorder_pass(roots, true)
    }

    fn reorder_pass(&mut self, roots: &[Bdd], symmetric: bool) -> ReorderStats {
        self.cache_clear();
        self.gc(roots);
        let mut env = self.reorder_env(roots);
        env.interaction = Some(self.interaction_matrix(roots));
        let mut stats = ReorderStats { size_before: env.cur_size, ..ReorderStats::default() };
        let nlevels = self.level2var.len();
        if nlevels < 2 {
            stats.size_after = env.cur_size;
            return stats;
        }
        // Variables by decreasing subtable size.
        let mut by_size: Vec<(usize, VarId)> = (0..nlevels)
            .map(|l| (env.sizes[l], self.level2var[l]))
            .filter(|&(s, _)| s >= 2)
            .collect();
        by_size.sort_unstable_by_key(|&(size, _)| std::cmp::Reverse(size));
        // Sifting the 64 most-populated levels per pass is the measured
        // sweet spot for the divider traversals: widening the candidate
        // set (95%-of-mass coverage, or every populated level) leaves
        // the n = 24 peak unchanged and costs nothing at n = 16, but
        // *worsens* the n = 32 peak by ~50% — the extra low-mass moves
        // perturb positions the dominant variables already settled.
        // Neither setting rescues n ≥ 48, where the late traversal rows
        // outgrow what pass-at-2×-threshold sifting can recover
        // (EXPERIMENTS.md, Table II notes).
        let max_vars = 64;
        let max_swaps = 2_000_000u64;
        let mut processed: std::collections::HashSet<VarId> = std::collections::HashSet::new();

        for &(_, v) in by_size.iter().take(max_vars) {
            if env.swaps >= max_swaps || processed.contains(&v) {
                continue;
            }
            let mut top = self.var2level[v as usize] as usize;
            let mut len = 1;
            if symmetric {
                // Grow the group with adjacent symmetric variables.
                while top + len < nlevels && self.adjacent_symmetric(&env, top + len - 1) {
                    len += 1;
                }
                while top > 0 && self.adjacent_symmetric(&env, top - 1) {
                    top -= 1;
                    len += 1;
                }
                if len > 1 {
                    stats.groups += 1;
                }
            }
            for l in top..top + len {
                processed.insert(self.level2var[l]);
            }
            self.sift_group(&mut env, top, len, max_swaps);
            stats.sifted += 1;
        }
        stats.swaps = env.swaps;
        stats.size_after = env.cur_size;
        self.cache_clear();
        self.gc(roots);
        stats
    }

    /// Heuristic check that the variables at `lvl` and `lvl + 1` are
    /// (positively) symmetric in every function through them: every
    /// upper-level node must satisfy `f01 == f10` on semantic edges.
    fn adjacent_symmetric(&self, env: &ReorderEnv, lvl: usize) -> bool {
        if lvl + 1 >= self.level2var.len() {
            return false;
        }
        let u = self.level2var[lvl];
        let w = self.level2var[lvl + 1];
        let mut any = false;
        for &i in &env.subtables[lvl] {
            if self.dead[i as usize] || self.nodes[i as usize].var != u {
                continue;
            }
            let node = self.nodes[i as usize];
            let f01 = if !self.is_const(node.low) && self.nodes[node.low.index()].var == w {
                self.nodes[node.low.index()].high.xor_complement(node.low.0 & 1)
            } else {
                node.low
            };
            let f10 = if !self.is_const(node.high) && self.nodes[node.high.index()].var == w {
                self.nodes[node.high.index()].low
            } else {
                node.high
            };
            if f01 != f10 {
                return false;
            }
            any = true;
        }
        any
    }

    /// Triggers a symmetric-sifting pass when the live node count has
    /// crossed [`reorder_threshold`](Self::reorder_threshold) (the
    /// threshold doubles after each pass, CUDD-style). Returns the pass
    /// statistics if reordering ran.
    pub fn maybe_reorder(&mut self, roots: &[Bdd]) -> Option<ReorderStats> {
        if self.live_nodes() <= self.reorder_threshold {
            return None;
        }
        let stats = self.sift_symmetric(roots);
        // Re-arm at twice the post-reorder size (CUDD's policy), but
        // never below the configured floor — with variable retirement
        // keeping the level set small, frequent passes stay affordable
        // and are what keep the traversal's intermediate BDDs compact.
        self.reorder_threshold = (stats.size_after * 2).max(self.reorder_threshold);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the interleaved-vs-separated comparator example: with a bad
    /// order (all a's above all b's) `a == b` over k bits is exponential;
    /// sifting must shrink it drastically.
    fn equality_bdd(m: &mut BddManager, k: u32, interleave: bool) -> Bdd {
        let mut f = BddManager::TRUE;
        for i in 0..k {
            let (va, vb) = if interleave { (2 * i, 2 * i + 1) } else { (i, k + i) };
            let a = m.var(va);
            let b = m.var(vb);
            let eq = m.iff(a, b);
            f = m.and(f, eq);
        }
        f
    }

    /// Collects a function's truth table over `vars` variables.
    fn truth_table(m: &BddManager, f: Bdd, vars: u32) -> Vec<bool> {
        (0..(1u32 << vars)).map(|bits| m.eval(f, |v| (bits >> v) & 1 == 1)).collect()
    }

    #[test]
    fn swap_preserves_functions() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        let g = m.or(a, c);
        let tf = truth_table(&m, f, 3);
        let tg = truth_table(&m, g, 3);
        let roots = vec![f, g, a, b, c];
        let mut env = m.reorder_env(&roots);
        for lvl in [0usize, 1, 0, 1, 1, 0] {
            m.swap_levels(&mut env, lvl);
            assert_eq!(truth_table(&m, f, 3), tf, "f changed after swap at {lvl}");
            assert_eq!(truth_table(&m, g, 3), tg, "g changed after swap at {lvl}");
        }
    }

    #[test]
    fn swap_preserves_complemented_roots() {
        // Negated roots exercise the complement-distribution in the
        // grandchild extraction: ¬f's cofactors carry the parity.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f0 = m.or(ab, c);
        let f = m.not(f0);
        let g0 = m.xor(b, c);
        let g = m.not(g0);
        let tf = truth_table(&m, f, 3);
        let tg = truth_table(&m, g, 3);
        let roots = vec![f, g];
        m.gc(&roots);
        let mut env = m.reorder_env(&roots);
        for lvl in [0usize, 1, 0, 1, 0, 1, 1, 0] {
            m.swap_levels(&mut env, lvl);
            assert_eq!(truth_table(&m, f, 3), tf, "¬f changed after swap at {lvl}");
            assert_eq!(truth_table(&m, g, 3), tg, "¬g changed after swap at {lvl}");
        }
        m.gc(&roots);
        m.validate().unwrap();
    }

    #[test]
    fn swap_size_bookkeeping_is_exact() {
        let mut m = BddManager::new();
        let f = equality_bdd(&mut m, 4, false);
        let roots = vec![f];
        m.gc(&roots);
        let mut env = m.reorder_env(&roots);
        for lvl in 0..7 {
            m.swap_levels(&mut env, lvl);
            // Recount live nodes from scratch and compare both the total
            // and the per-level counters.
            let recount: usize = (0..m.level2var.len()).map(|l| m.subtable_size(&env, l)).sum();
            assert_eq!(env.cur_size, recount, "after swap at {lvl}");
            for l in 0..m.level2var.len() {
                assert_eq!(env.sizes[l], m.subtable_size(&env, l), "level {l} after swap {lvl}");
            }
        }
    }

    #[test]
    fn non_interacting_swap_takes_fast_path() {
        // f over {0,1} and g over {2,3}: levels 1 and 2 hold variables
        // from different cones, so their swap must not touch any node.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let d = m.var(3);
        let f = m.and(a, b);
        let g = m.xor(c, d);
        let tf = truth_table(&m, f, 4);
        let tg = truth_table(&m, g, 4);
        let roots = vec![f, g];
        m.gc(&roots);
        let mut env = m.reorder_env(&roots);
        env.interaction = Some(m.interaction_matrix(&roots));
        let nodes_before = m.live_nodes();
        m.swap_levels(&mut env, 1); // swaps var 1 with var 2
        assert_eq!(m.live_nodes(), nodes_before, "fast path must allocate nothing");
        assert_eq!(truth_table(&m, f, 4), tf);
        assert_eq!(truth_table(&m, g, 4), tg);
        assert_eq!(m.order(), &[0, 2, 1, 3]);
        m.gc(&roots);
        m.validate().unwrap();
    }

    #[test]
    fn interaction_matrix_from_supports() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let _d = m.var(3);
        let f = m.and(a, b);
        let g = m.or(b, c);
        let im = m.interaction_matrix(&[f, g]);
        assert!(im.interacts(0, 1));
        assert!(im.interacts(1, 2));
        assert!(!im.interacts(0, 2), "0 and 2 never share a root");
        assert!(!im.interacts(0, 3), "3 is in no support at all");
    }

    #[test]
    fn sifting_shrinks_bad_equality_order() {
        let k = 6;
        let mut m = BddManager::new();
        let f = equality_bdd(&mut m, k, false);
        let tt = truth_table(&m, f, 2 * k);
        let before = m.size(f);
        let stats = m.sift(&[f]);
        let after = m.size(f);
        assert_eq!(truth_table(&m, f, 2 * k), tt, "sifting must preserve the function");
        // Separated order needs ~2^k nodes; interleaved needs O(k).
        assert!(after < before / 4, "sift: {before} -> {after} ({stats:?})");
        assert!(after <= 3 * (k as usize) + 2 + 2, "near-optimal expected, got {after}");
    }

    #[test]
    fn symmetric_sifting_groups_symmetric_vars() {
        // Totally symmetric function: x0 + x1 + x2 + x3 >= 2 (majority-ish).
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let mut f = BddManager::FALSE;
        for i in 0..4 {
            for j in (i + 1)..4 {
                let p = m.and(vars[i], vars[j]);
                f = m.or(f, p);
            }
        }
        let tt = truth_table(&m, f, 4);
        let stats = m.sift_symmetric(&[f]);
        assert_eq!(truth_table(&m, f, 4), tt);
        assert!(stats.groups >= 1, "expected a symmetry group, got {stats:?}");
    }

    #[test]
    fn maybe_reorder_triggers_on_threshold() {
        let mut m = BddManager::new();
        m.reorder_threshold = 50;
        let f = equality_bdd(&mut m, 6, false);
        let stats = m.maybe_reorder(&[f]);
        assert!(stats.is_some());
        assert!(m.reorder_threshold >= 100 || m.live_nodes() * 2 <= 100);
        // Second call right away should not re-trigger (below threshold).
        assert!(m.maybe_reorder(&[f]).is_none());
    }

    #[test]
    fn gc_after_reorder_keeps_roots_valid() {
        let mut m = BddManager::new();
        let f = equality_bdd(&mut m, 5, false);
        let tt = truth_table(&m, f, 10);
        m.sift(&[f]);
        m.gc(&[f]);
        assert_eq!(truth_table(&m, f, 10), tt);
        // Manager stays usable for new operations.
        let x = m.var(20);
        let g = m.and(f, x);
        assert!(m.eval(g, |_| true));
    }

    #[test]
    fn sift_independent_cones_stays_clamped() {
        // Many pairwise-independent functions: the interaction matrix is
        // block-diagonal, so sifting must finish with few real swaps and
        // preserve every cone.
        let mut m = BddManager::new();
        let mut roots = Vec::new();
        for i in 0..5u32 {
            let x = m.var(3 * i);
            let y = m.var(3 * i + 1);
            let z = m.var(3 * i + 2);
            let xy = m.and(x, y);
            roots.push(m.xor(xy, z));
        }
        let tts: Vec<Vec<bool>> = roots.iter().map(|&r| truth_table(&m, r, 15)).collect();
        m.sift(&roots.clone());
        for (r, tt) in roots.iter().zip(&tts) {
            assert_eq!(&truth_table(&m, *r, 15), tt);
        }
        m.validate().unwrap();
    }
}
