//! A Reduced Ordered Binary Decision Diagram (ROBDD) package.
//!
//! Sect. V of the paper proves the remainder condition
//! `vc2: 0 ≤ R < D` with BDDs: the predicate has a linear-size BDD under
//! an interleaved ordering, and a backward traversal of the circuit
//! (composing gate functions into the predicate) yields the weakest
//! precondition `WPC`, which must be implied by the input constraint `C`.
//! The paper uses CUDD \[30\] with a static fanin order \[25\] and dynamic
//! (symmetric) sifting \[26\]; this crate implements those pieces from
//! scratch:
//!
//! * a [`BddManager`] with a global unique table, computed-table caching,
//!   mark-and-sweep garbage collection, and index-stable nodes;
//! * the classic operations: [`ite`](BddManager::ite), Boolean
//!   connectives, cofactors, [`compose`](BddManager::compose),
//!   quantification, evaluation and model counting;
//! * **dynamic variable reordering**: in-place adjacent-level swaps,
//!   sifting, and symmetric sifting (grouping symmetric variables);
//! * circuit helpers: word comparison predicates, a static interleaved
//!   fanin order, and the weakest-precondition backward substitution.
//!
//! # Examples
//!
//! ```
//! use sbif_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.xor(x, y);
//! let ny = m.not(y);
//! let g = m.ite(x, ny, y);
//! assert_eq!(f, g); // canonical
//! ```

mod circuit;
mod fasthash;
mod manager;
mod ops;
mod reorder;

pub use circuit::{
    bdd_of_signal, interleaved_fanin_order, remainder_in_range, unsigned_less,
    weakest_precondition, weakest_precondition_budgeted, BddWord, WpcLimits, WpcStats,
};
pub use manager::{Bdd, BddManager, VarId};
pub use reorder::ReorderStats;
