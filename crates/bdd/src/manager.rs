//! The BDD node store: arena nodes, complement edges, open-addressed
//! unique/computed tables, pinning garbage collection.
//!
//! # Node representation
//!
//! Nodes live in a slab arena (`Vec<Node>`, 12 bytes per node) and are
//! addressed by packed 32-bit references: bit 0 is the *complement*
//! (negation) attribute, bits 1.. are the arena index. There is a single
//! terminal node (index 0, the constant ONE); FALSE is its complemented
//! edge. Negation is therefore a 1-bit flip — no nodes are allocated for
//! it — and the classic WPC backward traversal, which negates predicates
//! at every NAND/NOR/XNOR gate, pays nothing for them.
//!
//! # Canonical form
//!
//! With complement edges a function has two structural representations
//! (`f` and `¬f` with all edges flipped). Canonicity is restored by the
//! *regular then-edge* rule: the high (then) child of every stored node
//! is a regular (non-complemented) reference. [`BddManager::mk`] enforces
//! the rule by flipping both children and returning a complemented
//! reference when the requested then-edge is complemented. Two
//! references are equal iff they denote the same function.
//!
//! # Tables
//!
//! The unique table is an open-addressing (linear probing, power-of-two)
//! index of node *indices* hashed over the node fields with the
//! [`fasthash`](crate::fasthash) mix — one u32 per slot, so a probe
//! touches one cache line per eight slots instead of chasing `HashMap`
//! bucket pointers. The computed table is a lossy direct-mapped cache of
//! `(op, f, g, h) → r` entries: collisions overwrite (results are
//! canonical, so a stale miss only costs recomputation, never
//! soundness). Both are sized from the `vc2.*` trace gauges of previous
//! runs via [`BddManager::with_table_capacity`] (DESIGN.md §13).

use crate::fasthash::mix3;

/// A BDD variable, identified by a dense index. Variable identity is
/// stable under reordering; only the variable's *level* moves.
pub type VarId = u32;

/// A handle to a BDD function: a packed 32-bit edge — bit 0 is the
/// complement attribute, bits 1.. the arena index of the node. Node
/// indices are stable across reordering and garbage collection as long
/// as the node is kept live via GC roots or [`BddManager::pin`].
///
/// `Bdd` values are only meaningful together with the [`BddManager`]
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// Packs an index + complement bit into an edge.
    #[inline]
    pub(crate) fn edge(index: u32, complement: bool) -> Bdd {
        Bdd(index << 1 | complement as u32)
    }

    /// The arena index of the referenced node (complement bit stripped).
    #[inline]
    pub fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge carries the complement attribute.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same node with the complement attribute flipped (`¬f`).
    #[inline]
    pub(crate) fn flip(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// The regular (non-complemented) reference to the same node.
    #[inline]
    pub(crate) fn regular(self) -> Bdd {
        Bdd(self.0 & !1)
    }

    /// XORs another edge's complement bit onto this edge.
    #[inline]
    pub(crate) fn xor_complement(self, parity: u32) -> Bdd {
        Bdd(self.0 ^ parity)
    }
}

/// An arena node: `var` plus the two cofactor edges. The `high` edge is
/// always regular (canonical form); `low` may be complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Node {
    pub var: VarId,
    pub low: Bdd,
    pub high: Bdd,
}

/// Sentinel variable id for the terminal node (level = +∞).
pub(crate) const TERMINAL_VAR: VarId = u32::MAX;

const UNIQUE_EMPTY: u32 = u32::MAX;
const UNIQUE_TOMB: u32 = u32::MAX - 1;

/// Open-addressing unique table: maps `(var, low, high)` (read from the
/// arena) to the owning node index. Linear probing over a power-of-two
/// slot array of bare `u32` indices; deletions leave tombstones that a
/// rehash clears once they outnumber a quarter of the slots.
#[derive(Debug, Clone)]
struct UniqueTable {
    slots: Vec<u32>,
    mask: usize,
    len: usize,
    tombs: usize,
    /// Never shrink below the pre-sized capacity (DESIGN.md §13).
    min_slots: usize,
}

#[inline]
fn unique_hash(var: VarId, low: Bdd, high: Bdd) -> u64 {
    mix3(var as u64, low.0 as u64, high.0 as u64)
}

impl UniqueTable {
    fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(16) * 2).next_power_of_two();
        UniqueTable {
            slots: vec![UNIQUE_EMPTY; slots],
            mask: slots - 1,
            len: 0,
            tombs: 0,
            min_slots: slots,
        }
    }

    /// Looks up `(var, low, high)`; on a miss returns the slot where the
    /// new index must be stored (after the caller pushes the node).
    fn find(&self, nodes: &[Node], var: VarId, low: Bdd, high: Bdd) -> Result<u32, usize> {
        let mut i = unique_hash(var, low, high) as usize & self.mask;
        let mut first_tomb: Option<usize> = None;
        loop {
            match self.slots[i] {
                UNIQUE_EMPTY => return Err(first_tomb.unwrap_or(i)),
                UNIQUE_TOMB => {
                    first_tomb.get_or_insert(i);
                }
                idx => {
                    let n = &nodes[idx as usize];
                    if n.var == var && n.low == low && n.high == high {
                        return Ok(idx);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Stores `idx` at `slot` (from a failed [`find`](Self::find)).
    fn insert_at(&mut self, slot: usize, idx: u32) {
        if self.slots[slot] == UNIQUE_TOMB {
            self.tombs -= 1;
        }
        self.slots[slot] = idx;
        self.len += 1;
    }

    /// Whether the table must grow/rehash before the next insertion.
    #[inline]
    fn needs_rehash(&self) -> bool {
        // Keep load (incl. tombstones) at or below 2/3.
        3 * (self.len + self.tombs) >= 2 * self.slots.len()
    }

    /// Rebuilds the slot array at 4× the live population (clearing
    /// tombstones, growing or shrinking as the population moved, but
    /// never below the pre-sized floor).
    fn rehash(&mut self, nodes: &[Node]) {
        let size = (self.len.max(8) * 4).next_power_of_two().max(self.min_slots);
        let mut fresh = vec![UNIQUE_EMPTY; size];
        let mask = size - 1;
        for &idx in &self.slots {
            if idx == UNIQUE_EMPTY || idx == UNIQUE_TOMB {
                continue;
            }
            let n = &nodes[idx as usize];
            let mut i = unique_hash(n.var, n.low, n.high) as usize & mask;
            while fresh[i] != UNIQUE_EMPTY {
                i = (i + 1) & mask;
            }
            fresh[i] = idx;
        }
        self.slots = fresh;
        self.mask = mask;
        self.tombs = 0;
    }

    /// Removes the entry for `(var, low, high)` if it still resolves to
    /// `idx` (a later allocation may legitimately own the key).
    fn remove(&mut self, var: VarId, low: Bdd, high: Bdd, idx: u32) {
        let mut i = unique_hash(var, low, high) as usize & self.mask;
        loop {
            match self.slots[i] {
                UNIQUE_EMPTY => return,
                stored => {
                    if stored == idx {
                        self.slots[i] = UNIQUE_TOMB;
                        self.len -= 1;
                        self.tombs += 1;
                        return;
                    }
                    // keep probing through tombstones and mismatches
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Drops every entry (used by full GC sweeps that re-insert).
    fn clear(&mut self) {
        self.slots.fill(UNIQUE_EMPTY);
        self.len = 0;
        self.tombs = 0;
    }
}

/// A lossy direct-mapped computed table (operation cache). `key.0 == 0`
/// with `key == EMPTY_KEY` marks an unused entry; collisions overwrite.
#[derive(Debug, Clone)]
struct ComputedTable {
    entries: Vec<CacheEntry>,
    mask: usize,
    len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheEntry {
    op: u32,
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

const CACHE_FREE: u32 = u32::MAX;

impl ComputedTable {
    fn with_capacity(capacity: usize) -> Self {
        let size = capacity.max(1 << 10).next_power_of_two();
        ComputedTable {
            entries: vec![CacheEntry { op: CACHE_FREE, f: 0, g: 0, h: 0, r: 0 }; size],
            mask: size - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot(&self, op: u32, f: Bdd, g: Bdd, h: Bdd) -> usize {
        (mix3((op as u64) << 32 | f.0 as u64, g.0 as u64, h.0 as u64) as usize) & self.mask
    }

    #[inline]
    fn get(&self, op: u32, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        let e = &self.entries[self.slot(op, f, g, h)];
        (e.op == op && e.f == f.0 && e.g == g.0 && e.h == h.0).then_some(Bdd(e.r))
    }

    #[inline]
    fn put(&mut self, op: u32, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        let slot = self.slot(op, f, g, h);
        let e = &mut self.entries[slot];
        if e.op == CACHE_FREE {
            self.len += 1;
        }
        *e = CacheEntry { op, f: f.0, g: g.0, h: h.0, r: r.0 };
    }

    fn clear(&mut self) {
        self.entries.fill(CacheEntry { op: CACHE_FREE, f: 0, g: 0, h: 0, r: 0 });
        self.len = 0;
    }

    /// Drops every entry that touches a dead node, keeping the rest —
    /// GC must not destroy the cache locality the traversal depends on.
    /// Non-edge key fields (e.g. restrict's packed `(var, val)`) can at
    /// worst alias a dead index and cause a spurious drop, never a
    /// spurious keep: every true edge field is checked directly.
    fn sweep(&mut self, dead: &[bool]) {
        for e in &mut self.entries {
            if e.op == CACHE_FREE {
                continue;
            }
            let stale = [e.f, e.g, e.h, e.r].iter().any(|&x| {
                let i = (x >> 1) as usize;
                i < dead.len() && dead[i]
            });
            if stale {
                *e = CacheEntry { op: CACHE_FREE, f: 0, g: 0, h: 0, r: 0 };
                self.len -= 1;
            }
        }
    }

    /// Doubles the (cleared) cache up to `target` entries.
    fn grow_to(&mut self, target: usize) {
        let size = target.next_power_of_two();
        if size > self.entries.len() {
            self.entries = vec![CacheEntry { op: CACHE_FREE, f: 0, g: 0, h: 0, r: 0 }; size];
            self.mask = size - 1;
            self.len = 0;
        }
    }
}

/// A Reduced Ordered BDD manager with complement edges.
///
/// Nodes live in a slab arena; reduced-ness is maintained by the unique
/// table, ordered-ness by the `var2level` permutation (which dynamic
/// reordering mutates), canonicity by the regular-then-edge rule. Dead
/// nodes are reclaimed by mark-and-sweep [`gc`](BddManager::gc) against
/// caller-provided roots plus [`pin`](BddManager::pin)ned external
/// references, and their indices recycled through a free list.
///
/// # Examples
///
/// ```
/// use sbif_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.and(a, b);
/// assert_eq!(m.eval(f, |v| v == 0 || v == 1), true);
/// assert_eq!(m.eval(f, |v| v == 0), false);
/// // Negation is a pointer flip — no allocation, O(1).
/// let nf = m.not(f);
/// let back = m.not(nf);
/// assert_eq!(back, f);
/// ```
#[derive(Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    unique: UniqueTable,
    cache: ComputedTable,
    pub(crate) var2level: Vec<u32>,
    pub(crate) level2var: Vec<VarId>,
    free: Vec<u32>,
    pub(crate) dead: Vec<bool>,
    /// External pin counts (node index → count); pinned nodes survive
    /// every GC regardless of the `roots` argument.
    pins: crate::fasthash::FxHashMap<u32, u32>,
    /// When set (during reordering), `mk` logs newly allocated node ids
    /// here so the swap bookkeeping sees nodes recycled from the free
    /// list as well.
    pub(crate) mk_log: Option<Vec<u32>>,
    /// Live-node threshold that triggers automatic reordering in
    /// [`maybe_reorder`](BddManager::maybe_reorder).
    pub reorder_threshold: usize,
    /// Peak number of live nodes ever observed (Table II col. 8),
    /// counted post-complement-edges: a function and its negation share
    /// every node.
    pub peak_nodes: usize,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// The constant TRUE: the regular edge to the terminal.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant FALSE: the complemented edge to the terminal.
    pub const FALSE: Bdd = Bdd(1);

    /// Creates a manager holding only the terminal, with default-sized
    /// tables.
    pub fn new() -> Self {
        Self::with_table_capacity(1 << 12)
    }

    /// Creates a manager whose unique and computed tables are pre-sized
    /// for roughly `expected_nodes` live nodes — the knob the vc2 driver
    /// feeds from the `vc2.peak_live_nodes` trace gauge of previous runs
    /// so the hot phase of the backward traversal never pays for
    /// incremental rehashing (DESIGN.md §13).
    pub fn with_table_capacity(expected_nodes: usize) -> Self {
        let term = Node { var: TERMINAL_VAR, low: Bdd(0), high: Bdd(0) };
        BddManager {
            nodes: vec![term],
            unique: UniqueTable::with_capacity(expected_nodes),
            cache: ComputedTable::with_capacity(expected_nodes),
            var2level: Vec::new(),
            level2var: Vec::new(),
            free: Vec::new(),
            dead: vec![false],
            pins: crate::fasthash::FxHashMap::default(),
            mk_log: None,
            reorder_threshold: 100_000,
            peak_nodes: 1,
        }
    }

    /// Number of live (declared and not retired) variables — the number
    /// of levels in the current order.
    pub fn num_vars(&self) -> usize {
        self.level2var.len()
    }

    /// Ensures variables `0..=v` exist (new variables go to the bottom of
    /// the order) and returns the function of variable `v`.
    pub fn var(&mut self, v: VarId) -> Bdd {
        while self.var2level.len() <= v as usize {
            let lvl = self.level2var.len() as u32;
            self.var2level.push(lvl);
            self.level2var.push(self.var2level.len() as VarId - 1);
        }
        self.mk(v, Self::FALSE, Self::TRUE)
    }

    /// The negated variable.
    pub fn nvar(&mut self, v: VarId) -> Bdd {
        self.var(v).flip()
    }

    /// The level of a variable (0 = top).
    #[inline]
    pub fn level_of(&self, v: VarId) -> u32 {
        if v == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[v as usize]
        }
    }

    /// The current variable order, top to bottom.
    pub fn order(&self) -> &[VarId] {
        &self.level2var
    }

    /// Removes a variable from the order. The caller guarantees that no
    /// live node is labelled with `v` and that `v` will never be used
    /// again (e.g. a gate-output variable that has just been composed
    /// away). Retiring keeps the level set small, which is what makes
    /// frequent dynamic reordering affordable during long backward
    /// traversals.
    ///
    /// Retiring a variable that was never declared is a no-op (it has no
    /// level to remove).
    ///
    /// # Panics
    ///
    /// Panics if `v` was already retired.
    pub fn retire_var(&mut self, v: VarId) {
        if v as usize >= self.var2level.len() {
            return; // never declared: nothing to retire
        }
        let lvl = self.var2level[v as usize];
        assert_ne!(lvl, u32::MAX, "variable {v} already retired");
        self.level2var.remove(lvl as usize);
        self.var2level[v as usize] = u32::MAX;
        for l in lvl as usize..self.level2var.len() {
            self.var2level[self.level2var[l] as usize] = l as u32;
        }
    }

    /// Whether `v` is declared and not retired.
    pub fn is_live_var(&self, v: VarId) -> bool {
        (v as usize) < self.var2level.len() && self.var2level[v as usize] != u32::MAX
    }

    /// Declares all variables of `order` (if needed) and installs it as
    /// the variable order, top to bottom, by rebuilding the permutation.
    ///
    /// Must be called before any nodes over these variables exist.
    ///
    /// # Panics
    ///
    /// Panics if non-terminal nodes already exist, or if `order` contains
    /// duplicates or misses a declared variable.
    pub fn set_order(&mut self, order: &[VarId]) {
        assert!(
            self.nodes.len() == 1 && self.free.is_empty(),
            "set_order requires an empty manager"
        );
        let max = order.iter().copied().max().map_or(0, |m| m as usize + 1);
        assert_eq!(order.len(), max, "order must be a permutation of 0..max");
        self.var2level = vec![u32::MAX; order.len()];
        self.level2var = order.to_vec();
        for (lvl, &v) in order.iter().enumerate() {
            assert_eq!(self.var2level[v as usize], u32::MAX, "duplicate variable in order");
            self.var2level[v as usize] = lvl as u32;
        }
    }

    /// The reduced, canonical edge for `(v, low, high)` — cofactors given
    /// as *semantic* edges. Enforces the regular-then-edge rule: when
    /// `high` is complemented, the stored node is `(v, ¬low, ¬high)` and
    /// a complemented edge is returned.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the children's levels do not lie below
    /// `v`'s level.
    pub(crate) fn mk(&mut self, v: VarId, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        // Canonical form: the stored then-edge must be regular.
        let parity = high.0 & 1;
        let low = low.xor_complement(parity);
        let high = high.xor_complement(parity);
        debug_assert!(self.level_of(v) < self.level_of_node(low));
        debug_assert!(self.level_of(v) < self.level_of_node(high));
        let idx = match self.unique.find(&self.nodes, v, low, high) {
            Ok(idx) => {
                self.dead[idx as usize] = false;
                idx
            }
            Err(slot) => {
                let node = Node { var: v, low, high };
                let idx = match self.free.pop() {
                    Some(idx) => {
                        self.nodes[idx as usize] = node;
                        self.dead[idx as usize] = false;
                        idx
                    }
                    None => {
                        let idx = self.nodes.len() as u32;
                        assert!(idx < u32::MAX >> 1, "BDD arena exhausted (2^31 nodes)");
                        self.nodes.push(node);
                        self.dead.push(false);
                        idx
                    }
                };
                self.unique.insert_at(slot, idx);
                if self.unique.needs_rehash() {
                    self.unique.rehash(&self.nodes);
                    // Keep the (lossy) computed table in step with the
                    // node population so hit rates survive growth.
                    self.cache.grow_to(self.unique.len);
                }
                if let Some(log) = &mut self.mk_log {
                    log.push(idx);
                }
                self.peak_nodes = self.peak_nodes.max(self.nodes.len() - self.free.len());
                idx
            }
        };
        Bdd::edge(idx, false).xor_complement(parity)
    }

    /// `true` iff `f` is one of the terminals.
    #[inline]
    pub fn is_const(&self, f: Bdd) -> bool {
        f.0 <= 1
    }

    /// The top variable of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn top_var(&self, f: Bdd) -> VarId {
        assert!(!self.is_const(f), "terminals have no top variable");
        self.nodes[f.index()].var
    }

    /// The low (else) cofactor of `f` at its top variable, as a semantic
    /// edge (the stored edge with `f`'s complement attribute applied).
    pub fn low(&self, f: Bdd) -> Bdd {
        self.nodes[f.index()].low.xor_complement(f.0 & 1)
    }

    /// The high (then) cofactor of `f` at its top variable, as a semantic
    /// edge.
    pub fn high(&self, f: Bdd) -> Bdd {
        self.nodes[f.index()].high.xor_complement(f.0 & 1)
    }

    /// Evaluates `f` under an assignment.
    pub fn eval<F: Fn(VarId) -> bool>(&self, f: Bdd, assignment: F) -> bool {
        let mut parity = 0u32;
        let mut cur = f;
        while !self.is_const(cur) {
            parity ^= cur.0 & 1;
            let n = &self.nodes[cur.index()];
            cur = if assignment(n.var) { n.high } else { n.low };
        }
        (cur.0 ^ parity) & 1 == 0
    }

    /// Number of distinct nodes reachable from `f` (including the
    /// terminal). A function and its negation share all nodes, so
    /// `size(f) == size(¬f)`.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        while let Some(n) = stack.pop() {
            if seen.insert(n.index()) && !self.is_const(n) {
                stack.push(self.nodes[n.index()].low.regular());
                stack.push(self.nodes[n.index()].high);
            }
        }
        seen.len()
    }

    /// Number of live (allocated, not freed) nodes in the manager.
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Current number of unique-table entries (canonical triples). Lags
    /// [`live_nodes`](Self::live_nodes) by the unhashed terminal.
    pub fn unique_len(&self) -> usize {
        self.unique.len
    }

    /// Current number of occupied computed-table (operation cache)
    /// entries. The cache is lossy and cleared on garbage collection and
    /// reordering, so this is the residue of the work since the last
    /// such event, not a lifetime total.
    pub fn cache_len(&self) -> usize {
        self.cache.len
    }

    /// Computed-table lookup (complement-edge canonical keys).
    #[inline]
    pub(crate) fn cache_get(&self, op: u32, f: Bdd, g: Bdd, h: Bdd) -> Option<Bdd> {
        self.cache.get(op, f, g, h)
    }

    /// Computed-table insert.
    #[inline]
    pub(crate) fn cache_put(&mut self, op: u32, f: Bdd, g: Bdd, h: Bdd, r: Bdd) {
        self.cache.put(op, f, g, h, r);
    }

    /// Clears the computed table (reordering and GC invalidate indices).
    pub(crate) fn cache_clear(&mut self) {
        self.cache.clear();
    }

    /// The support of `f` (variables it depends on), ascending by id.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.regular()];
        while let Some(n) = stack.pop() {
            if seen.insert(n.index()) && !self.is_const(n) {
                let node = &self.nodes[n.index()];
                vars.insert(node.var);
                stack.push(node.low.regular());
                stack.push(node.high);
            }
        }
        vars.into_iter().collect()
    }

    /// Pins `f`'s node (and transitively everything it reaches) across
    /// garbage collections, independent of the `roots` each [`gc`]
    /// (Self::gc) call receives. Pins nest: every [`pin`](Self::pin)
    /// needs a matching [`unpin`](Self::unpin).
    pub fn pin(&mut self, f: Bdd) {
        if self.is_const(f) {
            return;
        }
        *self.pins.entry(f.index() as u32).or_insert(0) += 1;
    }

    /// Releases one pin of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not currently pinned.
    pub fn unpin(&mut self, f: Bdd) {
        if self.is_const(f) {
            return;
        }
        let idx = f.index() as u32;
        let count = self.pins.get_mut(&idx).expect("unpin without matching pin");
        *count -= 1;
        if *count == 0 {
            self.pins.remove(&idx);
        }
    }

    /// Number of distinct pinned nodes.
    pub fn pinned_count(&self) -> usize {
        self.pins.len()
    }

    /// Mark-and-sweep garbage collection: everything not reachable from
    /// `roots` or a [`pin`](Self::pin)ned node is freed and its index
    /// recycled. Also clears the computed table. Returns the number of
    /// nodes freed.
    pub fn gc(&mut self, roots: &[Bdd]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        let mut stack: Vec<u32> = roots.iter().map(|r| r.index() as u32).collect();
        stack.extend(self.pins.keys().copied());
        while let Some(i) = stack.pop() {
            if !marked[i as usize] {
                marked[i as usize] = true;
                stack.push(self.nodes[i as usize].low.index() as u32);
                stack.push(self.nodes[i as usize].high.index() as u32);
            }
        }
        let mut freed = 0;
        // `dead[i]` means "on the free list", so the sweep recycles every
        // unmarked not-yet-freed node in one pass. That includes
        // reorder-killed corpses (var neutralized to TERMINAL_VAR, unique
        // entry already removed at kill time, dead still false).
        #[allow(clippy::needless_range_loop)] // indexes three arrays in lockstep
        for i in 1..self.nodes.len() {
            if !marked[i] && !self.dead[i] {
                let n = self.nodes[i];
                if n.var != TERMINAL_VAR {
                    self.unique.remove(n.var, n.low, n.high, i as u32);
                }
                self.free.push(i as u32);
                self.dead[i] = true;
                freed += 1;
            }
        }
        if freed > 0 && self.unique.tombs * 4 >= self.unique.slots.len() {
            self.unique.rehash(&self.nodes);
        }
        // Entries that only touch surviving nodes stay valid: indices
        // enter the free list exclusively through this sweep (reorder
        // kills run behind an explicit cache_clear), so no cached edge
        // can ever alias a recycled slot.
        self.cache.sweep(&self.dead);
        self.debug_validate();
        freed
    }

    /// Rebuilds the unique table from scratch over the live nodes —
    /// recovery path used by the validate walker tests.
    #[allow(dead_code)]
    pub(crate) fn rebuild_unique(&mut self) {
        self.unique.clear();
        for i in 1..self.nodes.len() {
            if self.dead[i] {
                continue;
            }
            let n = self.nodes[i];
            if n.var == TERMINAL_VAR {
                continue;
            }
            if self.unique.needs_rehash() {
                self.unique.rehash(&self.nodes);
            }
            match self.unique.find(&self.nodes, n.var, n.low, n.high) {
                Ok(_) => panic!("duplicate live triple while rebuilding unique table"),
                Err(slot) => self.unique.insert_at(slot, i as u32),
            }
        }
    }

    /// Removes a node's unique-table entry (reorder bookkeeping).
    pub(crate) fn unique_remove(&mut self, var: VarId, low: Bdd, high: Bdd, idx: u32) {
        self.unique.remove(var, low, high, idx);
    }

    /// Inserts a node's unique-table entry, asserting the key is free
    /// (reorder bookkeeping; canonicity makes collisions impossible).
    pub(crate) fn unique_insert_new(&mut self, var: VarId, low: Bdd, high: Bdd, idx: u32) {
        if self.unique.needs_rehash() {
            self.unique.rehash(&self.nodes);
        }
        match self.unique.find(&self.nodes, var, low, high) {
            Ok(prev) => panic!(
                "swap collision impossible by canonicity: ({var}, {low:?}, {high:?}) \
                 already owned by node {prev}"
            ),
            Err(slot) => self.unique.insert_at(slot, idx),
        }
    }

    /// Counts satisfying assignments of `f` over the declared variables.
    ///
    /// Returns the count as `f64` (exact for < 2^53).
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let total_vars = self.num_vars() as u32;
        let mut memo: crate::fasthash::FxHashMap<u32, f64> = Default::default();
        // minterms(f) over the levels strictly below f's top level is
        // computed on edges (complement included in the key): the
        // complement of a child covers everything the child does not.
        fn go(m: &BddManager, f: Bdd, memo: &mut crate::fasthash::FxHashMap<u32, f64>) -> f64 {
            // Returns the fraction of assignments (over all levels below
            // and including f's top level) satisfying f, times 2^(levels
            // at or below f's top level)... expressed directly as the
            // minterm count over levels [level(f), num_vars).
            if f == BddManager::TRUE {
                return 1.0;
            }
            if f == BddManager::FALSE {
                return 0.0;
            }
            if let Some(&c) = memo.get(&f.0) {
                return c;
            }
            let n = m.nodes[f.index()];
            let parity = f.0 & 1;
            let lvl = m.level_of(n.var);
            let nvars = m.num_vars() as u32;
            let (lo_e, hi_e) = (n.low.xor_complement(parity), n.high.xor_complement(parity));
            let lo = go(m, lo_e, memo);
            let hi = go(m, hi_e, memo);
            let lo_lvl = m.level_of_node(lo_e).min(nvars);
            let hi_lvl = m.level_of_node(hi_e).min(nvars);
            let c = lo * (2f64).powi((lo_lvl - lvl - 1) as i32)
                + hi * (2f64).powi((hi_lvl - lvl - 1) as i32);
            memo.insert(f.0, c);
            c
        }
        let count = go(self, f, &mut memo);
        let top_lvl = self.level_of_node(f).min(total_vars);
        count * (2f64).powi(top_lvl as i32)
    }

    /// Level of a node's variable; terminals are at level `num_vars`.
    pub(crate) fn level_of_node(&self, f: Bdd) -> u32 {
        if self.is_const(f) {
            self.num_vars() as u32
        } else {
            self.level_of(self.nodes[f.index()].var)
        }
    }

    /// Full structural validation of the manager: canonical form
    /// (regular then-edges), reducedness (`low != high`), ordering
    /// (strictly increasing levels on every edge), unique-table
    /// consistency (every live non-terminal node owned by exactly its
    /// key, no stale or duplicate entries), and free-list/dead-flag
    /// agreement. Returns a description of the first violation.
    ///
    /// Runs in `O(nodes + slots)`; the engine calls it via
    /// [`debug_validate`](Self::debug_validate) after every GC and
    /// reorder pass in debug builds, and the property suites call it
    /// directly after every operation.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() || self.nodes[0].var != TERMINAL_VAR {
            return Err("terminal node missing".into());
        }
        let mut live_triples = 0usize;
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if self.dead[i] {
                continue;
            }
            if n.var == TERMINAL_VAR {
                continue; // neutralized corpse awaiting sweep
            }
            live_triples += 1;
            if n.high.is_complement() {
                return Err(format!("node {i}: complemented then-edge {:?}", n.high));
            }
            if n.low == n.high {
                return Err(format!("node {i}: redundant (low == high == {:?})", n.low));
            }
            for c in [n.low, n.high] {
                if c.index() >= self.nodes.len() {
                    return Err(format!("node {i}: child {:?} out of bounds", c));
                }
                if self.dead[c.index()] {
                    return Err(format!("node {i}: child {:?} is dead", c));
                }
            }
            // The unique table must resolve this node's key to itself.
            match self.unique.find(&self.nodes, n.var, n.low, n.high) {
                Ok(owner) if owner as usize == i => {}
                Ok(owner) => {
                    return Err(format!(
                        "canonicity violated: nodes {owner} and {i} share key \
                         ({}, {:?}, {:?})",
                        n.var, n.low, n.high
                    ));
                }
                Err(_) => {
                    return Err(format!("node {i}: missing from the unique table"));
                }
            }
            if !self.is_live_var(n.var) {
                // Zombie: unreachable garbage labeled a retired variable
                // (the retire_var contract guarantees unreachability);
                // it has no level, so ordering cannot be checked.
                continue;
            }
            let lvl = self.level_of(n.var);
            for c in [n.low, n.high] {
                // Zombie children sit at level +inf and pass trivially.
                if !self.is_const(c) && self.level_of_node(c) <= lvl {
                    return Err(format!(
                        "node {i}: ordering violated (level {} -> child level {})",
                        lvl,
                        self.level_of_node(c)
                    ));
                }
            }
        }
        if self.unique.len != live_triples {
            return Err(format!(
                "unique table holds {} entries but {} live triples exist",
                self.unique.len, live_triples
            ));
        }
        let free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        if free.len() != self.free.len() {
            return Err("free list contains duplicates".into());
        }
        for &idx in &free {
            if !self.dead[idx as usize] {
                return Err(format!("free node {idx} not flagged dead"));
            }
        }
        let dead_count = self.dead.iter().filter(|&&d| d).count();
        if dead_count != self.free.len() {
            return Err(format!(
                "{dead_count} dead flags but {} free-list entries (dead means freed)",
                self.free.len()
            ));
        }
        for (&idx, &count) in &self.pins {
            if count == 0 {
                return Err(format!("pin entry {idx} with zero count"));
            }
            if self.dead[idx as usize] {
                return Err(format!("pinned node {idx} is dead"));
            }
        }
        Ok(())
    }

    /// Debug-build validation hook: panics on the first structural
    /// violation. Compiled out in release builds.
    #[inline]
    pub(crate) fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.validate() {
            panic!("BDD invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let m = BddManager::new();
        assert!(m.is_const(BddManager::TRUE));
        assert!(m.is_const(BddManager::FALSE));
        assert_ne!(BddManager::TRUE, BddManager::FALSE);
        assert!(m.eval(BddManager::TRUE, |_| false));
        assert!(!m.eval(BddManager::FALSE, |_| true));
        assert_eq!(BddManager::TRUE.flip(), BddManager::FALSE);
    }

    #[test]
    fn reduction_rules() {
        let mut m = BddManager::new();
        let x = m.var(0);
        // mk with equal children collapses
        let same = m.mk(0, x, x);
        assert_eq!(same, x);
        // unique table shares
        let x2 = m.var(0);
        assert_eq!(x, x2);
        // complement-edge canonicity: ¬x through mk is the flipped edge
        let nx = m.mk(0, BddManager::TRUE, BddManager::FALSE);
        assert_eq!(nx, x.flip());
        assert_eq!(m.live_nodes(), 2, "x and ¬x share one node");
        m.validate().unwrap();
    }

    #[test]
    fn eval_and_size() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.size(f), 3); // 2 internal + 1 terminal
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(f, |v| v == 0));
        // negation shares every node
        let nf = m.not(f);
        assert_eq!(m.size(nf), m.size(f));
    }

    #[test]
    fn support_set() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let c = m.var(2);
        let f = m.or(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert!(m.support(BddManager::TRUE).is_empty());
    }

    #[test]
    fn gc_frees_unreachable() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let g = m.xor(a, b); // will become garbage
        let live_before = m.live_nodes();
        let freed = m.gc(&[f, a, b]);
        assert!(freed > 0, "xor nodes should be freed");
        assert_eq!(m.live_nodes(), live_before - freed);
        // f still evaluates correctly, and new allocations recycle slots.
        assert!(m.eval(f, |_| true));
        let g2 = m.xor(a, b);
        assert!(m.eval(g2, |v| v == 0));
        let _ = g; // old handle must not be used after gc — by contract
    }

    #[test]
    fn pinned_nodes_survive_gc() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let tt: Vec<bool> = (0..4u32).map(|x| m.eval(f, |v| (x >> v) & 1 == 1)).collect();
        m.pin(f);
        m.gc(&[]); // no explicit roots: only the pin keeps f alive
        let tt2: Vec<bool> = (0..4u32).map(|x| m.eval(f, |v| (x >> v) & 1 == 1)).collect();
        assert_eq!(tt, tt2);
        m.validate().unwrap();
        m.unpin(f);
        let freed = m.gc(&[]);
        assert!(freed > 0, "unpinned xor cone must be collected");
    }

    #[test]
    #[should_panic(expected = "unpin without matching pin")]
    fn unpin_unpinned_panics() {
        let mut m = BddManager::new();
        let a = m.var(0);
        m.unpin(a);
    }

    #[test]
    fn sat_count_small() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // over 3 vars: a∧b (2 for c) + c (4) − a∧b∧c (1) = 5
        assert_eq!(m.sat_count(f) as u64, 5);
        assert_eq!(m.sat_count(BddManager::TRUE) as u64, 8);
        assert_eq!(m.sat_count(BddManager::FALSE) as u64, 0);
        // complement edges: |¬f| = 2^3 − |f|
        let nf = m.not(f);
        assert_eq!(m.sat_count(nf) as u64, 3);
    }

    #[test]
    fn set_order_reverses() {
        let mut m = BddManager::new();
        m.set_order(&[2, 1, 0]);
        assert_eq!(m.level_of(2), 0);
        assert_eq!(m.level_of(0), 2);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        // top variable must be the one highest in the order: var 2
        assert_eq!(m.top_var(f), 2);
    }

    #[test]
    fn retire_var_compacts_levels() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.or(a, bc);
        // Compose variable 1 away, then retire it.
        let f2 = m.compose(f, 1, BddManager::TRUE);
        assert!(!m.support(f2).contains(&1));
        assert_eq!(m.num_vars(), 3);
        m.gc(&[f2, a, c]);
        m.retire_var(1);
        assert_eq!(m.num_vars(), 2);
        assert!(m.is_live_var(0) && !m.is_live_var(1) && m.is_live_var(2));
        // Levels stay consistent: var 2 moved up.
        assert_eq!(m.level_of(2), 1);
        // The remaining function still evaluates correctly.
        assert!(m.eval(f2, |v| v == 2));
        assert!(m.eval(f2, |v| v == 0));
        assert!(!m.eval(f2, |_| false));
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn double_retire_panics() {
        let mut m = BddManager::new();
        let _ = m.var(0);
        let _ = m.var(1);
        m.retire_var(0);
        m.retire_var(0);
    }

    #[test]
    fn unique_table_survives_heavy_churn() {
        // Grow, collect, regrow: the open-addressed table must rehash
        // through tombstone pressure without losing canonicity.
        let mut m = BddManager::with_table_capacity(16);
        for round in 0..5u32 {
            let mut f = BddManager::TRUE;
            for i in 0..10u32 {
                let x = m.var(i);
                let y = m.var(10 + ((i + round) % 10));
                let g = m.xor(x, y);
                f = m.and(f, g);
            }
            m.validate().unwrap();
            m.gc(&[]);
            m.validate().unwrap();
            assert_eq!(m.live_nodes(), 1, "round {round}: all garbage collected");
        }
    }

    #[test]
    fn reordering_works_after_retirement() {
        let mut m = BddManager::new();
        for i in 0..12u32 {
            let _ = m.var(i);
        }
        let mut f = BddManager::TRUE;
        for i in 0..4u32 {
            let x = m.var(i);
            let y = m.var(4 + i);
            let eq = m.iff(x, y);
            f = m.and(f, eq);
        }
        m.gc(&[f]);
        for v in 8..12u32 {
            m.retire_var(v);
        }
        assert_eq!(m.num_vars(), 8);
        let before = m.size(f);
        let stats = m.sift(&[f]);
        assert!(stats.size_after <= before);
        // Function preserved.
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(f, |v| v == 0));
    }
}
