//! The BDD node store: unique table, variable order, garbage collection.

use crate::fasthash::FxHashMap;
use std::collections::HashMap;

/// A BDD variable, identified by a dense index. Variable identity is
/// stable under reordering; only the variable's *level* moves.
pub type VarId = u32;

/// A handle to a BDD node (index-stable across reordering and garbage
/// collection, as long as the node is kept live via GC roots).
///
/// `Bdd` values are only meaningful together with the [`BddManager`] that
/// created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The internal node index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub var: VarId,
    pub low: Bdd,
    pub high: Bdd,
}

/// Sentinel variable id for the terminal nodes (level = +∞).
pub(crate) const TERMINAL_VAR: VarId = u32::MAX;

/// A Reduced Ordered BDD manager.
///
/// Nodes live in an arena; reduced-ness is maintained by the unique
/// table, ordered-ness by the `var2level` permutation (which dynamic
/// reordering mutates). Dead nodes are reclaimed by mark-and-sweep
/// [`gc`](BddManager::gc) against caller-provided roots and their indices
/// recycled through a free list.
///
/// # Examples
///
/// ```
/// use sbif_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.and(a, b);
/// assert_eq!(m.eval(f, |v| v == 0 || v == 1), true);
/// assert_eq!(m.eval(f, |v| v == 0), false);
/// ```
#[derive(Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<(VarId, Bdd, Bdd), Bdd>,
    pub(crate) cache: FxHashMap<(u8, Bdd, Bdd, Bdd), Bdd>,
    pub(crate) var2level: Vec<u32>,
    pub(crate) level2var: Vec<VarId>,
    free: Vec<Bdd>,
    pub(crate) dead: Vec<bool>,
    /// When set (during reordering), `mk` logs newly allocated node ids
    /// here so the swap bookkeeping sees nodes recycled from the free
    /// list as well.
    pub(crate) mk_log: Option<Vec<Bdd>>,
    /// Live-node threshold that triggers automatic reordering in
    /// [`maybe_reorder`](BddManager::maybe_reorder).
    pub reorder_threshold: usize,
    /// Peak number of allocated nodes ever observed (Table II col. 8).
    pub peak_nodes: usize,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// The constant FALSE.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant TRUE.
    pub const TRUE: Bdd = Bdd(1);

    /// Creates a manager holding only the two terminals.
    pub fn new() -> Self {
        let term = Node { var: TERMINAL_VAR, low: Bdd(0), high: Bdd(0) };
        BddManager {
            nodes: vec![term, term],
            unique: FxHashMap::default(),
            cache: FxHashMap::default(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            free: Vec::new(),
            dead: vec![false, false],
            mk_log: None,
            reorder_threshold: 100_000,
            peak_nodes: 2,
        }
    }

    /// Number of live (declared and not retired) variables — the number
    /// of levels in the current order.
    pub fn num_vars(&self) -> usize {
        self.level2var.len()
    }

    /// Ensures variables `0..=v` exist (new variables go to the bottom of
    /// the order) and returns the function of variable `v`.
    pub fn var(&mut self, v: VarId) -> Bdd {
        while self.var2level.len() <= v as usize {
            let lvl = self.level2var.len() as u32;
            self.var2level.push(lvl);
            self.level2var.push(self.var2level.len() as VarId - 1);
        }
        self.mk(v, Self::FALSE, Self::TRUE)
    }

    /// The negated variable.
    pub fn nvar(&mut self, v: VarId) -> Bdd {
        self.var(v);
        self.mk(v, Self::TRUE, Self::FALSE)
    }

    /// The level of a variable (0 = top).
    #[inline]
    pub fn level_of(&self, v: VarId) -> u32 {
        if v == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[v as usize]
        }
    }

    /// The current variable order, top to bottom.
    pub fn order(&self) -> &[VarId] {
        &self.level2var
    }

    /// Removes a variable from the order. The caller guarantees that no
    /// live node is labelled with `v` and that `v` will never be used
    /// again (e.g. a gate-output variable that has just been composed
    /// away). Retiring keeps the level set small, which is what makes
    /// frequent dynamic reordering affordable during long backward
    /// traversals.
    ///
    /// Retiring a variable that was never declared is a no-op (it has no
    /// level to remove).
    ///
    /// # Panics
    ///
    /// Panics if `v` was already retired.
    pub fn retire_var(&mut self, v: VarId) {
        if v as usize >= self.var2level.len() {
            return; // never declared: nothing to retire
        }
        let lvl = self.var2level[v as usize];
        assert_ne!(lvl, u32::MAX, "variable {v} already retired");
        self.level2var.remove(lvl as usize);
        self.var2level[v as usize] = u32::MAX;
        for l in lvl as usize..self.level2var.len() {
            self.var2level[self.level2var[l] as usize] = l as u32;
        }
    }

    /// Whether `v` is declared and not retired.
    pub fn is_live_var(&self, v: VarId) -> bool {
        (v as usize) < self.var2level.len() && self.var2level[v as usize] != u32::MAX
    }

    /// Declares all variables of `order` (if needed) and installs it as
    /// the variable order, top to bottom, by rebuilding the permutation.
    ///
    /// Must be called before any nodes over these variables exist.
    ///
    /// # Panics
    ///
    /// Panics if non-terminal nodes already exist, or if `order` contains
    /// duplicates or misses a declared variable.
    pub fn set_order(&mut self, order: &[VarId]) {
        assert!(
            self.nodes.len() == 2 && self.free.is_empty(),
            "set_order requires an empty manager"
        );
        let max = order.iter().copied().max().map_or(0, |m| m as usize + 1);
        assert_eq!(order.len(), max, "order must be a permutation of 0..max");
        self.var2level = vec![u32::MAX; order.len()];
        self.level2var = order.to_vec();
        for (lvl, &v) in order.iter().enumerate() {
            assert_eq!(self.var2level[v as usize], u32::MAX, "duplicate variable in order");
            self.var2level[v as usize] = lvl as u32;
        }
    }

    /// The reduced node `(v, low, high)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the children's levels do not lie below
    /// `v`'s level.
    pub(crate) fn mk(&mut self, v: VarId, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        debug_assert!(self.level_of(v) < self.level_of(self.nodes[low.index()].var));
        debug_assert!(self.level_of(v) < self.level_of(self.nodes[high.index()].var));
        if let Some(&n) = self.unique.get(&(v, low, high)) {
            self.dead[n.index()] = false;
            return n;
        }
        let node = Node { var: v, low, high };
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id.index()] = node;
                self.dead[id.index()] = false;
                id
            }
            None => {
                let id = Bdd(self.nodes.len() as u32);
                self.nodes.push(node);
                self.dead.push(false);
                id
            }
        };
        self.unique.insert((v, low, high), id);
        if let Some(log) = &mut self.mk_log {
            log.push(id);
        }
        self.peak_nodes = self.peak_nodes.max(self.nodes.len() - self.free.len());
        id
    }

    /// `true` iff `f` is one of the terminals.
    #[inline]
    pub fn is_const(&self, f: Bdd) -> bool {
        f.0 <= 1
    }

    /// The top variable of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn top_var(&self, f: Bdd) -> VarId {
        assert!(!self.is_const(f), "terminals have no top variable");
        self.nodes[f.index()].var
    }

    /// The low (else) child.
    pub fn low(&self, f: Bdd) -> Bdd {
        self.nodes[f.index()].low
    }

    /// The high (then) child.
    pub fn high(&self, f: Bdd) -> Bdd {
        self.nodes[f.index()].high
    }

    /// Evaluates `f` under an assignment.
    pub fn eval<F: Fn(VarId) -> bool>(&self, f: Bdd, assignment: F) -> bool {
        let mut cur = f;
        while !self.is_const(cur) {
            let n = &self.nodes[cur.index()];
            cur = if assignment(n.var) { n.high } else { n.low };
        }
        cur == Self::TRUE
    }

    /// Number of nodes reachable from `f` (including terminals).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if seen.insert(n) && !self.is_const(n) {
                stack.push(self.nodes[n.index()].low);
                stack.push(self.nodes[n.index()].high);
            }
        }
        seen.len()
    }

    /// Number of live (allocated, not freed) nodes in the manager.
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Current number of unique-table entries (canonical triples). Lags
    /// [`live_nodes`](Self::live_nodes) by the two terminals, which are
    /// not hashed.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Current number of computed-table (operation cache) entries.
    /// Cleared on garbage collection and reordering, so this is the
    /// residue of the work since the last such event, not a lifetime
    /// total.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The support of `f` (variables it depends on), ascending by id.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if seen.insert(n) && !self.is_const(n) {
                let node = &self.nodes[n.index()];
                vars.insert(node.var);
                stack.push(node.low);
                stack.push(node.high);
            }
        }
        vars.into_iter().collect()
    }

    /// Mark-and-sweep garbage collection: everything not reachable from
    /// `roots` is freed and its index recycled. Also clears the computed
    /// table. Returns the number of nodes freed.
    pub fn gc(&mut self, roots: &[Bdd]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<Bdd> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if !marked[n.index()] {
                marked[n.index()] = true;
                stack.push(self.nodes[n.index()].low);
                stack.push(self.nodes[n.index()].high);
            }
        }
        let mut freed = 0;
        let already_free: std::collections::HashSet<u32> =
            self.free.iter().map(|b| b.0).collect();
        #[allow(clippy::needless_range_loop)] // index is the node id itself
        for i in 2..self.nodes.len() {
            if !marked[i] && !already_free.contains(&(i as u32)) {
                let n = self.nodes[i];
                // Only remove the unique entry if it still points at this
                // node — a later allocation may legitimately own the key.
                if self.unique.get(&(n.var, n.low, n.high)) == Some(&Bdd(i as u32)) {
                    self.unique.remove(&(n.var, n.low, n.high));
                }
                self.free.push(Bdd(i as u32));
                self.dead[i] = true;
                freed += 1;
            }
        }
        self.cache.clear();
        freed
    }

    /// Counts satisfying assignments of `f` over the declared variables.
    ///
    /// Returns the count as `f64` (exact for < 2^53).
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let total_vars = self.num_vars() as u32;
        let mut memo: HashMap<Bdd, f64> = HashMap::new();
        fn go(
            m: &BddManager,
            f: Bdd,
            memo: &mut HashMap<Bdd, f64>,
        ) -> f64 {
            if f == BddManager::FALSE {
                return 0.0;
            }
            if f == BddManager::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = m.nodes[f.index()];
            let lvl = m.level_of(n.var);
            let lo = go(m, n.low, memo);
            let hi = go(m, n.high, memo);
            let lo_lvl = m.level_of_node(n.low);
            let hi_lvl = m.level_of_node(n.high);
            let c = lo * (2f64).powi((lo_lvl.min(m.num_vars() as u32) - lvl - 1) as i32)
                + hi * (2f64).powi((hi_lvl.min(m.num_vars() as u32) - lvl - 1) as i32);
            memo.insert(f, c);
            c
        }
        let count = go(self, f, &mut memo);
        let top_lvl = self.level_of_node(f);
        count * (2f64).powi(top_lvl.min(total_vars) as i32)
    }

    /// Level of a node's variable; terminals are at level `num_vars`.
    pub(crate) fn level_of_node(&self, f: Bdd) -> u32 {
        if self.is_const(f) {
            self.num_vars() as u32
        } else {
            self.level_of(self.nodes[f.index()].var)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let m = BddManager::new();
        assert!(m.is_const(BddManager::TRUE));
        assert!(m.is_const(BddManager::FALSE));
        assert_ne!(BddManager::TRUE, BddManager::FALSE);
        assert!(m.eval(BddManager::TRUE, |_| false));
        assert!(!m.eval(BddManager::FALSE, |_| true));
    }

    #[test]
    fn reduction_rules() {
        let mut m = BddManager::new();
        let x = m.var(0);
        // mk with equal children collapses
        let same = m.mk(0, x, x);
        assert_eq!(same, x);
        // unique table shares
        let x2 = m.var(0);
        assert_eq!(x, x2);
    }

    #[test]
    fn eval_and_size() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.size(f), 4); // 2 internal + 2 terminals
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(f, |v| v == 0));
    }

    #[test]
    fn support_set() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let c = m.var(2);
        let f = m.or(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert!(m.support(BddManager::TRUE).is_empty());
    }

    #[test]
    fn gc_frees_unreachable() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let g = m.xor(a, b); // will become garbage
        let live_before = m.live_nodes();
        let freed = m.gc(&[f, a, b]);
        assert!(freed > 0, "xor nodes should be freed");
        assert_eq!(m.live_nodes(), live_before - freed);
        // f still evaluates correctly, and new allocations recycle slots.
        assert!(m.eval(f, |_| true));
        let g2 = m.xor(a, b);
        assert!(m.eval(g2, |v| v == 0));
        let _ = g; // old handle must not be used after gc — by contract
    }

    #[test]
    fn sat_count_small() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // over 3 vars: |ab ∨ c| = 4 + 4 - 2 = ... enumerate: a∧b (2 for c) + c (4) − a∧b∧c (1) = 2+4-1 = 5
        assert_eq!(m.sat_count(f) as u64, 5);
        assert_eq!(m.sat_count(BddManager::TRUE) as u64, 8);
        assert_eq!(m.sat_count(BddManager::FALSE) as u64, 0);
    }

    #[test]
    fn set_order_reverses() {
        let mut m = BddManager::new();
        m.set_order(&[2, 1, 0]);
        assert_eq!(m.level_of(2), 0);
        assert_eq!(m.level_of(0), 2);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        // top variable must be the one highest in the order: var 2
        assert_eq!(m.top_var(f), 2);
    }

    #[test]
    fn retire_var_compacts_levels() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.or(a, bc);
        // Compose variable 1 away, then retire it.
        let f2 = m.compose(f, 1, BddManager::TRUE);
        assert!(!m.support(f2).contains(&1));
        assert_eq!(m.num_vars(), 3);
        m.gc(&[f2, a, b, c]);
        // Node (1, ...) may still exist through `f`; retire only after
        // dropping it.
        m.gc(&[f2, a, c]);
        m.retire_var(1);
        assert_eq!(m.num_vars(), 2);
        assert!(m.is_live_var(0) && !m.is_live_var(1) && m.is_live_var(2));
        // Levels stay consistent: var 2 moved up.
        assert_eq!(m.level_of(2), 1);
        // The remaining function still evaluates correctly.
        assert!(m.eval(f2, |v| v == 2));
        assert!(m.eval(f2, |v| v == 0));
        assert!(!m.eval(f2, |_| false));
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn double_retire_panics() {
        let mut m = BddManager::new();
        let _ = m.var(0);
        let _ = m.var(1);
        m.retire_var(0);
        m.retire_var(0);
    }

    #[test]
    fn reordering_works_after_retirement() {
        let mut m = BddManager::new();
        for i in 0..12u32 {
            let _ = m.var(i);
        }
        let mut f = BddManager::TRUE;
        for i in 0..4u32 {
            let x = m.var(i);
            let y = m.var(4 + i);
            let eq = m.iff(x, y);
            f = m.and(f, eq);
        }
        m.gc(&[f]);
        for v in 8..12u32 {
            m.retire_var(v);
        }
        assert_eq!(m.num_vars(), 8);
        let before = m.size(f);
        let stats = m.sift(&[f]);
        assert!(stats.size_after <= before);
        // Function preserved.
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(f, |v| v == 0));
    }
}
