//! Boolean operations, cofactors, composition, quantification.

use crate::manager::{Bdd, BddManager, VarId};

/// Computed-table operation tags.
const OP_ITE: u8 = 0;
const OP_RESTRICT: u8 = 1;

impl BddManager {
    /// If-then-else: `f ? g : h` — the universal connective.
    ///
    /// # Examples
    ///
    /// ```
    /// use sbif_bdd::BddManager;
    /// let mut m = BddManager::new();
    /// let x = m.var(0);
    /// let t = BddManager::TRUE;
    /// let e = BddManager::FALSE;
    /// assert_eq!(m.ite(x, t, e), x);
    /// ```
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f == Self::TRUE {
            return g;
        }
        if f == Self::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Self::TRUE && h == Self::FALSE {
            return f;
        }
        if let Some(&r) = self.cache.get(&(OP_ITE, f, g, h)) {
            return r;
        }
        // Split on the top variable (minimal level among the three).
        let lf = self.level_of_node(f);
        let lg = self.level_of_node(g);
        let lh = self.level_of_node(h);
        let lvl = lf.min(lg).min(lh);
        let v = self.level2var[lvl as usize];
        let (f0, f1) = self.top_cofactors(f, v);
        let (g0, g1) = self.top_cofactors(g, v);
        let (h0, h1) = self.top_cofactors(h, v);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(v, low, high);
        self.cache.insert((OP_ITE, f, g, h), r);
        r
    }

    /// The cofactors of `f` with respect to `v`, assuming `v` is at or
    /// above `f`'s top level.
    #[inline]
    pub(crate) fn top_cofactors(&self, f: Bdd, v: VarId) -> (Bdd, Bdd) {
        if self.is_const(f) || self.nodes[f.index()].var != v {
            (f, f)
        } else {
            let n = &self.nodes[f.index()];
            (n.low, n.high)
        }
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Self::FALSE, Self::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Self::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Self::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Self::TRUE)
    }

    /// `true` iff `f → g` is a tautology.
    pub fn implies_taut(&mut self, f: Bdd, g: Bdd) -> bool {
        self.implies(f, g) == Self::TRUE
    }

    /// The restriction `f[v := val]` for a variable at any level.
    pub fn restrict(&mut self, f: Bdd, v: VarId, val: bool) -> Bdd {
        if self.is_const(f) || v as usize >= self.var2level.len() {
            return f; // undeclared variables cannot occur in any node
        }
        let fl = self.level_of_node(f);
        let vl = self.level_of(v);
        if fl > vl {
            return f; // v cannot appear below its level
        }
        let key = (OP_RESTRICT, f, Bdd(v), Bdd(val as u32));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[f.index()];
        let r = if n.var == v {
            if val {
                n.high
            } else {
                n.low
            }
        } else {
            let low = self.restrict(n.low, v, val);
            let high = self.restrict(n.high, v, val);
            self.mk(n.var, low, high)
        };
        self.cache.insert(key, r);
        r
    }

    /// Functional composition `f[v := g]` — the step of the backward
    /// traversal in Sect. V: replace a gate-output variable by the BDD of
    /// the gate function.
    pub fn compose(&mut self, f: Bdd, v: VarId, g: Bdd) -> Bdd {
        if self.is_const(f) || v as usize >= self.var2level.len() {
            return f; // undeclared variables cannot occur in any node
        }
        let fl = self.level_of_node(f);
        let vl = self.level_of(v);
        if vl == u32::MAX {
            return f; // retired variables cannot occur in any node
        }
        if fl > vl {
            return f; // v cannot occur below its own level
        }
        if fl == vl {
            // v is f's top variable: both cofactors are immediate.
            let (f0, f1) = self.top_cofactors(f, v);
            return self.ite(g, f1, f0);
        }
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.ite(g, f1, f0)
    }

    /// Existential quantification over a single variable.
    pub fn exists(&mut self, f: Bdd, v: VarId) -> Bdd {
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.or(f0, f1)
    }

    /// Universal quantification over a single variable.
    pub fn forall(&mut self, f: Bdd, v: VarId) -> Bdd {
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.and(f0, f1)
    }

    /// One satisfying assignment as `(var, value)` pairs (for variables
    /// on the path; others are free), or `None` if `f` is FALSE.
    pub fn one_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f == Self::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !self.is_const(cur) {
            let n = &self.nodes[cur.index()];
            if n.low != Self::FALSE {
                path.push((n.var, false));
                cur = n.low;
            } else {
                path.push((n.var, true));
                cur = n.high;
            }
        }
        debug_assert_eq!(cur, Self::TRUE);
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks `got` against a truth-table oracle over `vars` variables.
    fn check_tt(m: &BddManager, got: Bdd, vars: u32, oracle: impl Fn(u32) -> bool) {
        for bits in 0..(1u32 << vars) {
            let asg = |v: VarId| (bits >> v) & 1 == 1;
            assert_eq!(m.eval(got, asg), oracle(bits), "bits={bits:b}");
        }
    }

    #[test]
    fn connectives_truth_tables() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b);
        check_tt(&m, and, 2, |x| x & 3 == 3);
        let or = m.or(a, b);
        check_tt(&m, or, 2, |x| x & 3 != 0);
        let xor = m.xor(a, b);
        check_tt(&m, xor, 2, |x| (x ^ (x >> 1)) & 1 == 1);
        let iff = m.iff(a, b);
        check_tt(&m, iff, 2, |x| (x ^ (x >> 1)) & 1 == 0);
        let imp = m.implies(a, b);
        check_tt(&m, imp, 2, |x| x & 1 == 0 || x & 2 == 2);
        let na = m.not(a);
        check_tt(&m, na, 2, |x| x & 1 == 0);
    }

    #[test]
    fn ite_is_canonical() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // (a ∧ b) ∨ (¬a ∧ c) built two different ways
        let ab = m.and(a, b);
        let na = m.not(a);
        let nac = m.and(na, c);
        let f1 = m.or(ab, nac);
        let f2 = m.ite(a, b, c);
        assert_eq!(f1, f2);
    }

    #[test]
    fn restrict_any_level() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.or(a, bc);
        // restrict middle variable
        let f_b1 = m.restrict(f, 1, true);
        let expect = m.or(a, c);
        assert_eq!(f_b1, expect);
        let f_b0 = m.restrict(f, 1, false);
        assert_eq!(f_b0, a);
        // restricting an absent variable is the identity
        assert_eq!(m.restrict(f, 7, true), f);
    }

    #[test]
    fn compose_substitutes() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.xor(a, b);
        let g = m.and(b, c);
        // f[a := b∧c] = (b∧c) ⊕ b
        let got = m.compose(f, 0, g);
        let expect = m.xor(g, b);
        assert_eq!(got, expect);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.exists(f, 0), b);
        assert_eq!(m.forall(f, 0), BddManager::FALSE);
        let g = m.or(a, b);
        assert_eq!(m.forall(g, 0), b);
        assert_eq!(m.exists(g, 0), BddManager::TRUE);
    }

    #[test]
    fn one_sat_paths() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let na = m.not(a);
        let f = m.and(na, b);
        let sat = m.one_sat(f).expect("satisfiable");
        let asg = |v: VarId| sat.iter().find(|&&(x, _)| x == v).map(|&(_, val)| val).unwrap_or(false);
        assert!(m.eval(f, asg));
        assert!(m.one_sat(BddManager::FALSE).is_none());
        assert_eq!(m.one_sat(BddManager::TRUE), Some(vec![]));
    }

    #[test]
    fn tautology_checks() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert!(m.implies_taut(ab, a));
        assert!(!m.implies_taut(a, ab));
        assert!(m.implies_taut(BddManager::FALSE, a));
        assert!(m.implies_taut(a, BddManager::TRUE));
    }

    #[test]
    fn three_var_exhaustive_majority() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        check_tt(&m, maj, 3, |x| (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1) >= 2);
    }
}
