//! Boolean operations, cofactors, composition, quantification — all
//! complement-edge aware.
//!
//! Negation is free (a 1-bit flip on the edge), so every connective is
//! a single [`ite`](BddManager::ite) with the *standard-triple*
//! normalization: the cache key always carries a regular `f` (via
//! `ite(¬f, g, h) = ite(f, h, g)`) and a regular `g` (via
//! `ite(f, g, h) = ¬ite(f, ¬g, ¬h)`), so the four symmetric variants of
//! every call hit the same computed-table entry.

use crate::manager::{Bdd, BddManager, VarId};

/// Computed-table operation tags.
const OP_ITE: u32 = 0;
const OP_RESTRICT: u32 = 1;

impl BddManager {
    /// If-then-else: `f ? g : h` — the universal connective.
    ///
    /// # Examples
    ///
    /// ```
    /// use sbif_bdd::BddManager;
    /// let mut m = BddManager::new();
    /// let x = m.var(0);
    /// let t = BddManager::TRUE;
    /// let e = BddManager::FALSE;
    /// assert_eq!(m.ite(x, t, e), x);
    /// ```
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        let r = self.ite_rec(f, g, h);
        self.debug_validate();
        r
    }

    fn ite_rec(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f == Self::TRUE {
            return g;
        }
        if f == Self::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Self::TRUE && h == Self::FALSE {
            return f;
        }
        if g == Self::FALSE && h == Self::TRUE {
            return f.flip();
        }
        // Collapse branches equal (or opposite) to the selector: under
        // the then-branch f is true, under the else-branch false.
        let (mut f, mut g, mut h) = (f, g, h);
        if g == f {
            g = Self::TRUE;
        } else if g == f.flip() {
            g = Self::FALSE;
        }
        if h == f {
            h = Self::FALSE;
        } else if h == f.flip() {
            h = Self::TRUE;
        }
        if g == h {
            return g;
        }
        if g == Self::TRUE && h == Self::FALSE {
            return f;
        }
        if g == Self::FALSE && h == Self::TRUE {
            return f.flip();
        }
        // Standard triple: regular f (swap the branches), then regular g
        // (complement the result).
        if f.is_complement() {
            f = f.flip();
            std::mem::swap(&mut g, &mut h);
        }
        let parity = g.0 & 1;
        g = g.xor_complement(parity);
        h = h.xor_complement(parity);
        if let Some(r) = self.cache_get(OP_ITE, f, g, h) {
            return r.xor_complement(parity);
        }
        // Split on the top variable (minimal level among the three).
        let lf = self.level_of_node(f);
        let lg = self.level_of_node(g);
        let lh = self.level_of_node(h);
        let lvl = lf.min(lg).min(lh);
        let v = self.level2var[lvl as usize];
        let (f0, f1) = self.top_cofactors(f, v);
        let (g0, g1) = self.top_cofactors(g, v);
        let (h0, h1) = self.top_cofactors(h, v);
        let low = self.ite_rec(f0, g0, h0);
        let high = self.ite_rec(f1, g1, h1);
        let r = self.mk(v, low, high);
        self.cache_put(OP_ITE, f, g, h, r);
        r.xor_complement(parity)
    }

    /// The cofactors of `f` with respect to `v` (as semantic edges),
    /// assuming `v` is at or above `f`'s top level.
    #[inline]
    pub(crate) fn top_cofactors(&self, f: Bdd, v: VarId) -> (Bdd, Bdd) {
        if self.is_const(f) || self.nodes[f.index()].var != v {
            (f, f)
        } else {
            let parity = f.0 & 1;
            let n = &self.nodes[f.index()];
            (n.low.xor_complement(parity), n.high.xor_complement(parity))
        }
    }

    /// Negation: flips the complement attribute — O(1), allocation-free.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        f.flip()
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Self::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Self::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g.flip(), g)
    }

    /// Equivalence.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, g.flip())
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Self::TRUE)
    }

    /// `true` iff `f → g` is a tautology.
    pub fn implies_taut(&mut self, f: Bdd, g: Bdd) -> bool {
        self.implies(f, g) == Self::TRUE
    }

    /// The restriction `f[v := val]` for a variable at any level.
    pub fn restrict(&mut self, f: Bdd, v: VarId, val: bool) -> Bdd {
        if self.is_const(f) || v as usize >= self.var2level.len() {
            return f; // undeclared variables cannot occur in any node
        }
        let vl = self.level_of(v);
        if vl == u32::MAX || self.level_of_node(f) > vl {
            return f; // retired, or v cannot appear below its level
        }
        // Restriction commutes with negation: recurse on the regular
        // node so `f` and `¬f` share cache entries and result nodes.
        let parity = f.0 & 1;
        let r = self.restrict_rec(f.regular(), v, vl, val);
        self.debug_validate();
        r.xor_complement(parity)
    }

    fn restrict_rec(&mut self, f: Bdd, v: VarId, vl: u32, val: bool) -> Bdd {
        debug_assert!(!f.is_complement());
        if self.is_const(f) || self.level_of_node(f) > vl {
            return f;
        }
        let n = self.nodes[f.index()];
        if n.var == v {
            return if val { n.high } else { n.low };
        }
        let key = Bdd(v << 1 | val as u32);
        if let Some(r) = self.cache_get(OP_RESTRICT, f, key, Self::TRUE) {
            return r;
        }
        let lo = {
            let p = n.low.0 & 1;
            self.restrict_rec(n.low.regular(), v, vl, val).xor_complement(p)
        };
        let hi = self.restrict_rec(n.high, v, vl, val);
        let r = self.mk(n.var, lo, hi);
        self.cache_put(OP_RESTRICT, f, key, Self::TRUE, r);
        r
    }

    /// Functional composition `f[v := g]` — the step of the backward
    /// traversal in Sect. V: replace a gate-output variable by the BDD of
    /// the gate function.
    pub fn compose(&mut self, f: Bdd, v: VarId, g: Bdd) -> Bdd {
        if self.is_const(f) || v as usize >= self.var2level.len() {
            return f; // undeclared variables cannot occur in any node
        }
        let fl = self.level_of_node(f);
        let vl = self.level_of(v);
        if vl == u32::MAX {
            return f; // retired variables cannot occur in any node
        }
        if fl > vl {
            return f; // v cannot occur below its own level
        }
        if fl == vl && self.nodes[f.index()].var == v {
            // v is f's top variable: both cofactors are immediate.
            let (f0, f1) = self.top_cofactors(f, v);
            return self.ite(g, f1, f0);
        }
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.ite(g, f1, f0)
    }

    /// Existential quantification over a single variable.
    pub fn exists(&mut self, f: Bdd, v: VarId) -> Bdd {
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.or(f0, f1)
    }

    /// Universal quantification over a single variable.
    pub fn forall(&mut self, f: Bdd, v: VarId) -> Bdd {
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.and(f0, f1)
    }

    /// One satisfying assignment as `(var, value)` pairs (for variables
    /// on the path; others are free), or `None` if `f` is FALSE.
    pub fn one_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f == Self::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !self.is_const(cur) {
            let parity = cur.0 & 1;
            let n = &self.nodes[cur.index()];
            let lo = n.low.xor_complement(parity);
            // Both cofactors FALSE would make the node FALSE itself,
            // impossible by reducedness — so one branch always leads on.
            if lo != Self::FALSE {
                path.push((n.var, false));
                cur = lo;
            } else {
                path.push((n.var, true));
                cur = n.high.xor_complement(parity);
            }
        }
        debug_assert_eq!(cur, Self::TRUE);
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks `got` against a truth-table oracle over `vars` variables.
    fn check_tt(m: &BddManager, got: Bdd, vars: u32, oracle: impl Fn(u32) -> bool) {
        for bits in 0..(1u32 << vars) {
            let asg = |v: VarId| (bits >> v) & 1 == 1;
            assert_eq!(m.eval(got, asg), oracle(bits), "bits={bits:b}");
        }
    }

    #[test]
    fn connectives_truth_tables() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b);
        check_tt(&m, and, 2, |x| x & 3 == 3);
        let or = m.or(a, b);
        check_tt(&m, or, 2, |x| x & 3 != 0);
        let xor = m.xor(a, b);
        check_tt(&m, xor, 2, |x| (x ^ (x >> 1)) & 1 == 1);
        let iff = m.iff(a, b);
        check_tt(&m, iff, 2, |x| (x ^ (x >> 1)) & 1 == 0);
        let imp = m.implies(a, b);
        check_tt(&m, imp, 2, |x| x & 1 == 0 || x & 2 == 2);
        let na = m.not(a);
        check_tt(&m, na, 2, |x| x & 1 == 0);
    }

    #[test]
    fn ite_is_canonical() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // (a ∧ b) ∨ (¬a ∧ c) built two different ways
        let ab = m.and(a, b);
        let na = m.not(a);
        let nac = m.and(na, c);
        let f1 = m.or(ab, nac);
        let f2 = m.ite(a, b, c);
        assert_eq!(f1, f2);
    }

    #[test]
    fn complement_edges_dedup_negations() {
        // De Morgan pairs share nodes: ¬(a∧b) and ¬a∨¬b must be the
        // same edge, and must not allocate beyond the a∧b cone.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let live = m.live_nodes();
        let nab = m.not(ab);
        let na = m.not(a);
        let nb = m.not(b);
        let demorgan = m.or(na, nb);
        assert_eq!(nab, demorgan);
        assert_eq!(m.live_nodes(), live, "negations must be allocation-free");
        // xor / xnor also share all nodes.
        let x = m.xor(a, b);
        let nx = m.iff(a, b);
        assert_eq!(x.flip(), nx);
    }

    #[test]
    fn restrict_any_level() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.or(a, bc);
        // restrict middle variable
        let f_b1 = m.restrict(f, 1, true);
        let expect = m.or(a, c);
        assert_eq!(f_b1, expect);
        let f_b0 = m.restrict(f, 1, false);
        assert_eq!(f_b0, a);
        // restricting an absent variable is the identity
        assert_eq!(m.restrict(f, 7, true), f);
        // restriction commutes with negation
        let nf = m.not(f);
        let nf_b1 = m.restrict(nf, 1, true);
        assert_eq!(nf_b1, f_b1.flip());
    }

    #[test]
    fn compose_substitutes() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.xor(a, b);
        let g = m.and(b, c);
        // f[a := b∧c] = (b∧c) ⊕ b
        let got = m.compose(f, 0, g);
        let expect = m.xor(g, b);
        assert_eq!(got, expect);
        // compose commutes with negation of the target
        let nf = m.not(f);
        let ngot = m.compose(nf, 0, g);
        assert_eq!(ngot, got.flip());
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.exists(f, 0), b);
        assert_eq!(m.forall(f, 0), BddManager::FALSE);
        let g = m.or(a, b);
        assert_eq!(m.forall(g, 0), b);
        assert_eq!(m.exists(g, 0), BddManager::TRUE);
    }

    #[test]
    fn one_sat_paths() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let na = m.not(a);
        let f = m.and(na, b);
        let sat = m.one_sat(f).expect("satisfiable");
        let asg = |v: VarId| sat.iter().find(|&&(x, _)| x == v).map(|&(_, val)| val).unwrap_or(false);
        assert!(m.eval(f, asg));
        assert!(m.one_sat(BddManager::FALSE).is_none());
        assert_eq!(m.one_sat(BddManager::TRUE), Some(vec![]));
        // complemented roots get satisfying paths too
        let nf = m.not(f);
        let sat = m.one_sat(nf).expect("satisfiable");
        let asg = |v: VarId| sat.iter().find(|&&(x, _)| x == v).map(|&(_, val)| val).unwrap_or(false);
        assert!(m.eval(nf, asg));
    }

    #[test]
    fn tautology_checks() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert!(m.implies_taut(ab, a));
        assert!(!m.implies_taut(a, ab));
        assert!(m.implies_taut(BddManager::FALSE, a));
        assert!(m.implies_taut(a, BddManager::TRUE));
    }

    #[test]
    fn three_var_exhaustive_majority() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        check_tt(&m, maj, 3, |x| (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1) >= 2);
    }
}
