//! Circuit-level BDD helpers for the vc2 proof of Sect. V.
//!
//! BDD variables are identified with netlist signals (`VarId` = signal
//! index), so composing a gate-output variable with its gate function is
//! the backward-traversal step `WPC := WPC[s ← gate_s]`.

use crate::{Bdd, BddManager, VarId};
use sbif_netlist::{Gate, Netlist, Sig, UnaryOp, Word};

/// A word of BDD variables (least significant first), mirroring
/// [`sbif_netlist::Word`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BddWord(pub Vec<VarId>);

impl From<&Word> for BddWord {
    fn from(w: &Word) -> Self {
        BddWord(w.iter().map(|s| s.0).collect())
    }
}

/// The predicate `⟨a⟩ < ⟨b⟩` over variable words (shorter word
/// zero-extended). Built LSB-up; linear-size under an interleaved order.
pub fn unsigned_less(m: &mut BddManager, a: &BddWord, b: &BddWord) -> Bdd {
    let len = a.0.len().max(b.0.len());
    let mut lt = BddManager::FALSE;
    for i in 0..len {
        let av = a.0.get(i).map(|&v| m.var(v)).unwrap_or(BddManager::FALSE);
        let bv = b.0.get(i).map(|&v| m.var(v)).unwrap_or(BddManager::FALSE);
        // lt' = (¬a_i ∧ b_i) ∨ ((a_i ≡ b_i) ∧ lt)
        let na = m.not(av);
        let strict = m.and(na, bv);
        let eq = m.iff(av, bv);
        let keep = m.and(eq, lt);
        lt = m.or(strict, keep);
    }
    lt
}

/// The vc2 predicate `0 ≤ R < D` of Definition 1: the remainder's sign
/// bit (MSB of `r`) is clear and its value bits are unsigned-less than
/// the divisor. `r` is the two's-complement remainder word (`2n−1` bits),
/// `d` the divisor word (`n` bits, sign bit included).
pub fn remainder_in_range(m: &mut BddManager, r: &BddWord, d: &BddWord) -> Bdd {
    assert!(!r.0.is_empty(), "remainder word must be non-empty");
    let sign = *r.0.last().expect("non-empty");
    let value = BddWord(r.0[..r.0.len() - 1].to_vec());
    let lt = unsigned_less(m, &value, d);
    let sv = m.var(sign);
    let ns = m.not(sv);
    m.and(ns, lt)
}

/// The static initial variable order of Sect. V: the bits of `R` and `D`
/// with equal indices side by side, higher indices first, followed by the
/// remaining signals in a fanin DFS pre-order from those bits (the
/// ordering of Malik et al. \[25\], "extended to the case that the relative
/// order of certain variables has already been fixed").
///
/// Returns a permutation of all signal indices, suitable for
/// [`BddManager::set_order`].
pub fn interleaved_fanin_order(nl: &Netlist, r: &Word, d: &Word) -> Vec<VarId> {
    let n_sig = nl.num_signals();
    let mut placed = vec![false; n_sig];
    let mut order: Vec<VarId> = Vec::with_capacity(n_sig);
    // Signals whose position is dictated by the interleave (placed only
    // at their scheduled slot, never during DFS).
    let mut fixed = vec![false; n_sig];
    for &s in r.iter().chain(d.iter()) {
        fixed[s.index()] = true;
    }
    let place = |order: &mut Vec<VarId>, placed: &mut Vec<bool>, s: Sig| {
        if !placed[s.index()] {
            placed[s.index()] = true;
            order.push(s.0);
        }
    };
    let dfs = |order: &mut Vec<VarId>, placed: &mut Vec<bool>, fixed: &[bool], root: Sig, nl: &Netlist| {
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            if placed[s.index()] || fixed[s.index()] {
                continue;
            }
            placed[s.index()] = true;
            order.push(s.0);
            // Pre-order: the signal sits above its fanins.
            for f in nl.gate(s).fanins() {
                stack.push(f);
            }
        }
    };
    let rw = r.len();
    for i in (0..rw).rev() {
        place(&mut order, &mut placed, r[i]);
        if i < d.len() {
            place(&mut order, &mut placed, d[i]);
        }
    }
    for i in (0..rw).rev() {
        dfs(&mut order, &mut placed, &fixed, r[i], nl);
    }
    // Remaining signals (quotient cones, constraint logic, …).
    for s in nl.signals().rev() {
        if !placed[s.index()] {
            dfs(&mut order, &mut placed, &fixed, s, nl);
            place(&mut order, &mut placed, s);
        }
    }
    debug_assert_eq!(order.len(), n_sig);
    order
}

/// Statistics of a [`weakest_precondition`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WpcStats {
    /// Gate substitutions performed.
    pub composed: usize,
    /// Peak number of allocated BDD nodes (Table II, col. 8).
    pub peak_nodes: usize,
    /// Dynamic reordering passes triggered.
    pub reorders: usize,
    /// Size of the final WPC BDD.
    pub final_size: usize,
}

/// Cooperative limits for [`weakest_precondition_budgeted`]. The
/// live-node ceiling is deterministic (the traversal is sequential, so
/// the cut happens at the same gate on every run); the interrupt flag
/// is the wall-clock watchdog hook and only ever cancels.
#[derive(Debug, Clone, Default)]
pub struct WpcLimits {
    /// Stop once the manager's live-node population exceeds this after
    /// a compose step (checked post-GC, so transient garbage does not
    /// trip it).
    pub max_live_nodes: Option<usize>,
    /// Cooperative cancellation, polled once per composed gate.
    pub interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl WpcLimits {
    /// `true` when neither limit is set (the unlimited fast path).
    pub fn is_unlimited(&self) -> bool {
        self.max_live_nodes.is_none() && self.interrupt.is_none()
    }
}

/// Backward traversal of Sect. V: starting from `predicate` (over output
/// signal variables), substitutes every gate-output variable by the BDD
/// of its gate function, in reverse topological order, yielding the
/// weakest precondition over the primary inputs under which the predicate
/// holds at the outputs.
///
/// Dynamic symmetric sifting is triggered by node growth
/// ([`BddManager::maybe_reorder`]); garbage is collected periodically.
pub fn weakest_precondition(
    m: &mut BddManager,
    nl: &Netlist,
    predicate: Bdd,
) -> (Bdd, WpcStats) {
    let (f, stats) = weakest_precondition_budgeted(m, nl, predicate, &WpcLimits::default());
    (f.expect("unlimited WPC traversal always completes"), stats)
}

/// [`weakest_precondition`] under cooperative [`WpcLimits`]: returns
/// `None` instead of a result BDD when the live-node ceiling is hit or
/// the interrupt flag is raised mid-traversal. The stats describe the
/// partial work either way (`composed` tells how far it got).
pub fn weakest_precondition_budgeted(
    m: &mut BddManager,
    nl: &Netlist,
    predicate: Bdd,
    limits: &WpcLimits,
) -> (Option<Bdd>, WpcStats) {
    let mut f = predicate;
    let mut stats = WpcStats::default();
    // Track a superset of f's support to skip irrelevant gates cheaply.
    let mut in_support = vec![false; nl.num_signals()];
    for v in m.support(f) {
        in_support[v as usize] = true;
    }
    // Retire every variable that can never enter the traversal (outside
    // the predicate's transitive fanin cone): dead levels make dynamic
    // reordering quadratically more expensive.
    {
        let roots: Vec<Sig> = in_support
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(Sig(i as u32)))
            .collect();
        let cone: std::collections::HashSet<u32> =
            nl.cone(&roots).into_iter().map(|s| s.0).collect();
        for v in 0..nl.num_signals() as u32 {
            if !cone.contains(&v) && m.is_live_var(v) {
                m.retire_var(v);
            }
        }
    }
    let mut since_gc = 0usize;
    // Adaptive GC watermark: collect once the live population doubles
    // past the last post-collection count, so dead intermediate
    // predicates never dominate the peak-live-nodes gauge.
    let mut gc_watermark = 1024usize.max(m.live_nodes() * 2);
    for s in nl.signals().rev() {
        if !in_support[s.index()] {
            continue;
        }
        let gate = nl.gate(s).clone();
        if gate.is_input() {
            continue;
        }
        let g = match gate {
            Gate::Input => unreachable!(),
            Gate::Const(v) => {
                if v {
                    BddManager::TRUE
                } else {
                    BddManager::FALSE
                }
            }
            Gate::Unary(op, a) => {
                let av = m.var(a.0);
                in_support[a.index()] = true;
                match op {
                    UnaryOp::Buf => av,
                    UnaryOp::Not => m.not(av),
                }
            }
            Gate::Binary(op, a, b) => {
                let av = m.var(a.0);
                let bv = m.var(b.0);
                in_support[a.index()] = true;
                in_support[b.index()] = true;
                use sbif_netlist::BinOp::*;
                match op {
                    And => m.and(av, bv),
                    Or => m.or(av, bv),
                    Xor => m.xor(av, bv),
                    Nand => {
                        let x = m.and(av, bv);
                        m.not(x)
                    }
                    Nor => {
                        let x = m.or(av, bv);
                        m.not(x)
                    }
                    Xnor => m.iff(av, bv),
                    AndNot => {
                        let nb = m.not(bv);
                        m.and(av, nb)
                    }
                }
            }
        };
        f = m.compose(f, s.0, g);
        in_support[s.index()] = false;
        // The composed-away variable can never reappear: drop its level.
        if m.is_live_var(s.0) {
            m.retire_var(s.0);
        }
        stats.composed += 1;
        since_gc += 1;
        if let Some(_r) = m.maybe_reorder(&[f]) {
            stats.reorders += 1;
            // Reordering GCs internally; support flags stay valid.
            since_gc = 0;
            gc_watermark = 1024usize.max(m.live_nodes() * 2);
        } else if m.live_nodes() >= gc_watermark || since_gc >= 64 {
            m.gc(&[f]);
            since_gc = 0;
            gc_watermark = 1024usize.max(m.live_nodes() * 2);
        }
        stats.peak_nodes = stats.peak_nodes.max(m.peak_nodes);
        // Budget poll point: once per composed gate, after any GC, so
        // the live count is the canonical (garbage-free) population.
        if let Some(max) = limits.max_live_nodes {
            if m.live_nodes() > max {
                if since_gc > 0 {
                    m.gc(&[f]);
                    since_gc = 0;
                    gc_watermark = 1024usize.max(m.live_nodes() * 2);
                }
                if m.live_nodes() > max {
                    stats.final_size = m.size(f);
                    return (None, stats);
                }
            }
        }
        if let Some(flag) = &limits.interrupt {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                stats.final_size = m.size(f);
                return (None, stats);
            }
        }
    }
    m.gc(&[f]);
    stats.peak_nodes = stats.peak_nodes.max(m.peak_nodes);
    stats.final_size = m.size(f);
    (Some(f), stats)
}

/// Builds the BDD of a signal *forward* (bottom-up over its cone) — used
/// for the input-constraint BDD `C`, whose cone (a comparator) has a
/// linear-size BDD.
pub fn bdd_of_signal(m: &mut BddManager, nl: &Netlist, root: Sig) -> Bdd {
    let cone = nl.cone(&[root]);
    let mut of: std::collections::HashMap<Sig, Bdd> = std::collections::HashMap::new();
    for s in cone {
        let b = match *nl.gate(s) {
            Gate::Input => m.var(s.0),
            Gate::Const(v) => {
                if v {
                    BddManager::TRUE
                } else {
                    BddManager::FALSE
                }
            }
            Gate::Unary(op, a) => {
                let av = of[&a];
                match op {
                    UnaryOp::Buf => av,
                    UnaryOp::Not => m.not(av),
                }
            }
            Gate::Binary(op, a, b) => {
                let (av, bv) = (of[&a], of[&b]);
                use sbif_netlist::BinOp::*;
                match op {
                    And => m.and(av, bv),
                    Or => m.or(av, bv),
                    Xor => m.xor(av, bv),
                    Nand => {
                        let x = m.and(av, bv);
                        m.not(x)
                    }
                    Nor => {
                        let x = m.or(av, bv);
                        m.not(x)
                    }
                    Xnor => m.iff(av, bv),
                    AndNot => {
                        let nb = m.not(bv);
                        m.and(av, nb)
                    }
                }
            }
        };
        of.insert(s, b);
    }
    of[&root]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbif_netlist::build::nonrestoring_divider;

    #[test]
    fn unsigned_less_exhaustive() {
        let mut m = BddManager::new();
        let a = BddWord(vec![0, 1, 2]);
        let b = BddWord(vec![3, 4, 5]);
        let lt = unsigned_less(&mut m, &a, &b);
        for x in 0u32..8 {
            for y in 0u32..8 {
                let got = m.eval(lt, |v| {
                    if v < 3 {
                        (x >> v) & 1 == 1
                    } else {
                        (y >> (v - 3)) & 1 == 1
                    }
                });
                assert_eq!(got, x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn unsigned_less_mixed_width() {
        let mut m = BddManager::new();
        let a = BddWord(vec![0, 1, 2, 3]); // 4 bits
        let b = BddWord(vec![4, 5]); // 2 bits, zero-extended
        let lt = unsigned_less(&mut m, &a, &b);
        for x in 0u32..16 {
            for y in 0u32..4 {
                let got = m.eval(lt, |v| {
                    if v < 4 {
                        (x >> v) & 1 == 1
                    } else {
                        (y >> (v - 4)) & 1 == 1
                    }
                });
                assert_eq!(got, x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn interleaved_order_is_linear_for_less() {
        // Under the interleaved MSB-first order the comparator BDD is
        // linear; under a separated order it is exponential.
        let k = 8u32;
        let mut m = BddManager::new();
        let order: Vec<VarId> = (0..k).rev().flat_map(|i| [i, k + i]).collect();
        m.set_order(&order);
        let a = BddWord((0..k).collect());
        let b = BddWord((k..2 * k).collect());
        let lt = unsigned_less(&mut m, &a, &b);
        assert!(m.size(lt) <= 3 * k as usize + 2, "size {}", m.size(lt));
    }

    #[test]
    fn remainder_predicate_semantics() {
        let mut m = BddManager::new();
        // 3-bit remainder (1 sign + 2 value), 2-bit divisor.
        let r = BddWord(vec![0, 1, 2]);
        let d = BddWord(vec![3, 4]);
        let p = remainder_in_range(&mut m, &r, &d);
        for rv in 0u32..8 {
            for dv in 0u32..4 {
                let got = m.eval(p, |v| {
                    if v < 3 {
                        (rv >> v) & 1 == 1
                    } else {
                        (dv >> (v - 3)) & 1 == 1
                    }
                });
                let signed_r = if rv >= 4 { rv as i32 - 8 } else { rv as i32 };
                let expect = signed_r >= 0 && (signed_r as u32) < dv;
                assert_eq!(got, expect, "r={signed_r} d={dv}");
            }
        }
    }

    #[test]
    fn forward_bdd_matches_simulation() {
        let div = nonrestoring_divider(2);
        let nl = &div.netlist;
        let mut m = BddManager::new();
        let c = bdd_of_signal(&mut m, nl, div.constraint);
        for r0 in 0u64..4 {
            for dv in 0u64..2 {
                let out = {
                    let mut with_c = nl.clone();
                    with_c.add_output("c", div.constraint);
                    with_c.eval_u64(&[("r0", r0), ("d", dv)])
                };
                let inputs: Vec<bool> = nl
                    .inputs()
                    .iter()
                    .map(|&s| {
                        let name = nl.name(s).expect("named");
                        let (bus, idx) = name.split_once('[').map(|(b, r)| {
                            (b, r.trim_end_matches(']').parse::<usize>().expect("idx"))
                        }).expect("bus");
                        let v = if bus == "r0" { r0 } else { dv };
                        (v >> idx) & 1 == 1
                    })
                    .collect();
                let vals = nl.simulate_bool(&inputs);
                let got = m.eval(c, |v| vals[v as usize]);
                // both paths must agree with the simulated constraint bit
                assert_eq!(got, vals[div.constraint.index()]);
                let _ = out;
            }
        }
    }

    #[test]
    fn wpc_of_identity_circuit() {
        // A circuit that just wires inputs to outputs: the WPC of any
        // predicate is the predicate over the inputs.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.and(a, b);
        nl.add_output("o", g);
        let mut m = BddManager::new();
        let pred = m.var(g.0); // "output is 1"
        let (wpc, stats) = weakest_precondition(&mut m, &nl, pred);
        let expect = {
            let av = m.var(a.0);
            let bv = m.var(b.0);
            m.and(av, bv)
        };
        assert_eq!(wpc, expect);
        assert_eq!(stats.composed, 1);
    }

    #[test]
    fn wpc_vc2_tiny_divider() {
        // End-to-end vc2 on the 2-bit divider: C → WPC(0 ≤ R < D).
        let div = nonrestoring_divider(2);
        let nl = &div.netlist;
        let mut m = BddManager::new();
        m.set_order(&interleaved_fanin_order(nl, &div.remainder, &div.divisor));
        let r = BddWord::from(&div.remainder);
        let d = BddWord::from(&div.divisor);
        let pred = remainder_in_range(&mut m, &r, &d);
        let (wpc, _stats) = weakest_precondition(&mut m, nl, pred);
        let c = bdd_of_signal(&mut m, nl, div.constraint);
        assert!(m.implies_taut(c, wpc), "C must imply WPC for a correct divider");
        // And the implication must be strict (some invalid input violates
        // the remainder condition).
        assert_ne!(wpc, BddManager::TRUE);
    }

    #[test]
    fn budgeted_wpc_stops_on_live_node_ceiling_and_interrupt() {
        let div = nonrestoring_divider(4);
        let nl = &div.netlist;
        let mut m = BddManager::new();
        m.set_order(&interleaved_fanin_order(nl, &div.remainder, &div.divisor));
        let r = BddWord::from(&div.remainder);
        let d = BddWord::from(&div.divisor);
        let pred = remainder_in_range(&mut m, &r, &d);
        // A one-node ceiling must abort almost immediately…
        let limits = WpcLimits { max_live_nodes: Some(1), interrupt: None };
        let (f, stats) = weakest_precondition_budgeted(&mut m, nl, pred, &limits);
        assert!(f.is_none(), "a 1-node budget cannot complete");
        assert!(stats.composed >= 1, "at least one gate composes before the poll");

        // …a pre-raised interrupt likewise…
        let mut m2 = BddManager::new();
        m2.set_order(&interleaved_fanin_order(nl, &div.remainder, &div.divisor));
        let pred2 = remainder_in_range(&mut m2, &r, &d);
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let limits2 = WpcLimits { max_live_nodes: None, interrupt: Some(flag) };
        let (f2, _) = weakest_precondition_budgeted(&mut m2, nl, pred2, &limits2);
        assert!(f2.is_none());

        // …and an ample budget reproduces the unlimited result exactly.
        let mut m3 = BddManager::new();
        m3.set_order(&interleaved_fanin_order(nl, &div.remainder, &div.divisor));
        let pred3 = remainder_in_range(&mut m3, &r, &d);
        let limits3 = WpcLimits { max_live_nodes: Some(1 << 20), interrupt: None };
        let (f3, s3) = weakest_precondition_budgeted(&mut m3, nl, pred3, &limits3);
        let mut m4 = BddManager::new();
        m4.set_order(&interleaved_fanin_order(nl, &div.remainder, &div.divisor));
        let pred4 = remainder_in_range(&mut m4, &r, &d);
        let (f4, s4) = weakest_precondition(&mut m4, nl, pred4);
        assert!(f3.is_some());
        assert_eq!(s3.composed, s4.composed);
        assert_eq!(s3.final_size, s4.final_size);
        let _ = f4;
    }
}
