//! `sbif-lint` — static analysis of BNET netlists.
//!
//! ```text
//! sbif-lint [--strict] <netlist.bnet>...
//! ```
//!
//! Runs the structural rule catalog of [`sbif::check::lint`] over each
//! file: combinational cycles, undriven/floating signals, unknown
//! operators, fan-in arity mismatches, multiply-driven signals (errors);
//! dead cones, duplicate gates, bus index gaps, missing outputs
//! (warnings). `--strict` promotes warnings to failures.
//!
//! Exit code 0 = all files pass, 1 = findings failed a file,
//! 2 = usage or I/O error.

use sbif::check::lint_bnet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sbif-lint [--strict] <netlist.bnet>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut strict = false;
    let mut files: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--strict" => strict = true,
            "-h" | "--help" => return usage(),
            f if !f.starts_with('-') => files.push(f),
            _ => return usage(),
        }
    }
    if files.is_empty() {
        return usage();
    }
    let mut failed = false;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = lint_bnet(&text);
        for issue in &report.issues {
            println!("{path}: {issue}");
        }
        if report.passes(strict) {
            println!(
                "{path}: ok ({} warning(s))",
                report.num_warnings()
            );
        } else {
            println!(
                "{path}: FAILED ({} error(s), {} warning(s))",
                report.num_errors(),
                report.num_warnings()
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
