//! `sbif-lint` — static analysis of BNET netlists.
//!
//! ```text
//! sbif-lint [--strict] [--allow RULE]... <netlist.bnet>...
//! ```
//!
//! Two layers run over each file. The lenient text linter of
//! [`sbif::check::lint`] catches what only a *malformed file* can
//! express: combinational cycles, undriven/floating signals, unknown
//! operators, fan-in arity mismatches, multiply-driven signals (all
//! errors), plus bus index gaps and missing outputs (warnings). Files
//! with errors stop there.
//!
//! Well-formed files are then parsed and handed to the
//! [`sbif::analysis`] framework (DESIGN.md §14), whose passes supply the
//! structural warnings: `unreachable` (cone slicing), `stuck-at`
//! (ternary constant propagation) and `duplicate-gate` (canonical
//! structural hashing — transitive, so `AND(a,b)` vs `¬NAND(b,a)` vs
//! gates over already-merged duplicates all count, unlike the old
//! exact-shape check).
//!
//! `--strict` promotes warnings to failures; `--allow RULE` (repeatable)
//! suppresses a warning rule by its kebab-case name, e.g.
//! `--allow stuck-at`. Errors cannot be allowed.
//!
//! Exit code 0 = all files pass, 1 = findings failed a file,
//! 2 = usage or I/O error.

use sbif::analysis::{analyze, findings, AnalysisConfig};
use sbif::check::{lint_bnet, LintLevel};
use sbif::netlist::io::read_bnet;
use sbif::trace::Recorder;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: sbif-lint [--strict] [--allow RULE]... <netlist.bnet>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut strict = false;
    let mut allow: Vec<String> = Vec::new();
    let mut files: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--strict" => strict = true,
            "--allow" => {
                let Some(rule) = args.get(i + 1) else { return usage() };
                allow.push(rule.clone());
                i += 1;
            }
            "-h" | "--help" => return usage(),
            f if !f.starts_with('-') => files.push(f),
            _ => return usage(),
        }
        i += 1;
    }
    if files.is_empty() {
        return usage();
    }
    let allowed = |rule: &str| allow.iter().any(|a| a == rule);
    let mut failed = false;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = lint_bnet(&text);
        let errors = report.num_errors();
        let mut warnings = 0usize;
        // The framework replaces the text linter's unreachable/duplicate
        // warnings on parseable files; text errors and the remaining
        // file-level warnings (width-gap, no-outputs) always print.
        let framework = if errors == 0 { read_bnet(&text).ok() } else { None };
        for issue in &report.issues {
            if issue.rule.level() == LintLevel::Warning {
                if allowed(issue.rule.name())
                    || (framework.is_some()
                        && matches!(issue.rule.name(), "unreachable" | "duplicate-gate"))
                {
                    continue;
                }
                warnings += 1;
            }
            println!("{path}: {issue}");
        }
        if let Some(nl) = &framework {
            let db = analyze(nl, &AnalysisConfig::default(), &Recorder::new());
            for f in findings(nl, &db) {
                if allowed(f.rule) {
                    continue;
                }
                warnings += 1;
                println!("{path}: warning[{}]: {}", f.rule, f.message);
            }
        }
        if errors == 0 && (!strict || warnings == 0) {
            println!("{path}: ok ({warnings} warning(s))");
        } else {
            println!("{path}: FAILED ({errors} error(s), {warnings} warning(s))");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
