//! `sbif-serve` — the verification job server CLI (DESIGN.md §15).
//!
//! ```text
//! sbif-serve <socket> [--cache-dir DIR] [--jobs N] [--metrics-out FILE]
//! sbif-serve submit <socket> <json-request-line>
//! sbif-serve stop <socket>
//! ```
//!
//! The first form runs the daemon: it binds the Unix socket, prints a
//! `listening on <socket>` line once it is ready, and serves
//! line-delimited JSON verification jobs (see `sbif::serve` for the
//! protocol) until a `shutdown` request arrives. All jobs share one
//! content-addressed result cache — in-memory by default, persisted
//! under `--cache-dir DIR` so later daemons and `sbif-verify
//! --cache-dir` runs reuse the verdicts. `--jobs N` sets the SBIF
//! worker count for jobs that don't choose their own; `--metrics-out
//! FILE` writes the daemon's final `serve.*`/`cache.*` counters as a
//! canonical `sbif-metrics-v1` report at shutdown.
//!
//! `submit` is a one-shot client: it sends a single request line and
//! prints every response line for it (including streamed `trace`
//! events) until the terminal `result`/`error`/`pong`/`stats` line.
//! `stop` asks a running daemon to shut down. Verify requests may
//! carry per-job governor budgets (`budget_conflicts`, `budget_terms`,
//! `budget_nodes`, `budget_sat`, `timeout_ms`; DESIGN.md §16) — a
//! budget-limited job answers `"verdict": "inconclusive"` with an
//! `exhausted_at` field naming the stage that ran out. `--max-active
//! N` bounds concurrent jobs; excess requests get a `rejected`
//! response with a `retry_after_ms` hint.
//!
//! Exit code 0 = success (daemon: clean shutdown; submit: `result` with
//! verdict `correct` or `inconclusive`, or `pong`/`stats`/`bye`), 1 =
//! job failed, rejected, or verdict not correct, 2 = usage/connection
//! error.

use sbif::serve::{Server, ServeOptions};
use sbif::trace::json::{parse, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sbif-serve <socket> [--cache-dir DIR] [--jobs N] [--max-active N]\n\
         \x20                [--metrics-out FILE]\n\
         \x20      sbif-serve submit <socket> <json-request-line>\n\
         \x20      sbif-serve stop <socket>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => usage(),
        Some("submit") => match &args[1..] {
            [socket, request] => submit(socket, request),
            _ => usage(),
        },
        Some("stop") => match &args[1..] {
            [socket] => submit(socket, "{\"op\": \"shutdown\"}"),
            _ => usage(),
        },
        Some(_) => daemon(&args),
    }
}

fn daemon(args: &[String]) -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut max_active = ServeOptions::default().max_active;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                let Some(d) = args.get(i + 1) else { return usage() };
                cache_dir = Some(PathBuf::from(d));
                i += 2;
            }
            "--jobs" => {
                let Some(j) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok())
                else {
                    return usage();
                };
                jobs = j.max(1);
                i += 2;
            }
            "--max-active" => {
                let Some(m) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok())
                else {
                    return usage();
                };
                max_active = m;
                i += 2;
            }
            "--metrics-out" => {
                let Some(p) = args.get(i + 1) else { return usage() };
                metrics_out = Some(p.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => return usage(),
            path => {
                if socket.replace(PathBuf::from(path)).is_some() {
                    return usage();
                }
                i += 1;
            }
        }
    }
    let Some(socket) = socket else { return usage() };

    let server = match Server::bind(&ServeOptions {
        socket: socket.clone(),
        cache_dir,
        default_jobs: jobs,
        max_active,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", socket.display());
            return ExitCode::from(2);
        }
    };
    println!(
        "sbif-serve: listening on {} ({} default jobs, {} cache)",
        socket.display(),
        jobs,
        if server.cache_is_persistent() { "persistent" } else { "in-memory" }
    );
    let report = server.run();
    println!("sbif-serve: shut down after {} job(s)", report.counter("serve.jobs"));
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("metrics report written to {path}");
    }
    ExitCode::SUCCESS
}

/// Sends one request line and relays every response for it; job-scoped
/// streams end at the `result`/`error` line, control ops after one line.
fn submit(socket: &str, request: &str) -> ExitCode {
    let stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {socket}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot clone socket: {e}");
            return ExitCode::from(2);
        }
    });
    let mut writer = stream;
    if writeln!(writer, "{request}").and_then(|()| writer.flush()).is_err() {
        eprintln!("cannot send request");
        return ExitCode::from(2);
    }
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("server closed the connection before a terminal response");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                return ExitCode::from(2);
            }
        }
        print!("{line}");
        let Ok(v) = parse(&line) else { continue };
        let Some(obj) = v.as_object() else { continue };
        match obj.get("ev").and_then(Value::as_str) {
            Some("accepted") | Some("trace") => continue,
            Some("result") => {
                // A budget-limited job is a successful run whose answer
                // is "the budget was too small" — exit 0, like the
                // sbif-verify CLI.
                let ok = matches!(
                    obj.get("verdict").and_then(Value::as_str),
                    Some("correct") | Some("inconclusive")
                );
                return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            Some("error") | Some("job_failed") | Some("rejected") => {
                return ExitCode::FAILURE
            }
            _ => return ExitCode::SUCCESS,
        }
    }
}
