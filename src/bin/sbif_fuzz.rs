//! `sbif-fuzz` — the mutation-kill campaign from the command line.
//!
//! ```text
//! sbif-fuzz [--smoke] [--seed N] [--jobs N] [--arch A]... [--n W]...
//!           [--count K] [--certify] [--no-shrink] [--json FILE]
//!           [--corpus-dir DIR] [--min-semantic K] [--metrics-out FILE]
//!           [--cache-dir DIR]
//! ```
//!
//! Generates dividers, injects gate-level faults (see `sbif-fuzz`'s
//! library docs for the fault models), classifies each mutant as
//! benign, benign-under-C or semantics-changing, and runs the full
//! verification pipeline on them. Every semantics-changing mutant must
//! come back NOT correct; strictly benign mutants and the unmutated
//! seeds must verify wherever the architecture is within its proven
//! width frontier (beyond it the cell runs kill-only — see
//! `Arch::proven_width_limit`). Escaping or crashing mutants are
//! delta-debugged to a minimal width/output cone and (with
//! `--corpus-dir`) written out as BNET files for the replay corpus.
//!
//! `--smoke` selects the fixed CI profile (seed, archs, widths, counts)
//! and enforces `--min-semantic 200` unless overridden; the JSON kill
//! matrix is byte-identical for every `--jobs` value. So is the
//! deterministic metrics report that `--metrics-out FILE` writes
//! (canonical `sbif-metrics-v1` JSON, DESIGN.md §12): the `fuzz.*`
//! tallies mirror the kill matrix, the `sbif.*`/`rewrite.*`/`vc2.*`
//! totals measure the campaign's actual symbolic work, and the
//! `cache.*` counters account what `--cache-dir DIR` saved.
//!
//! `--cache-dir DIR` attaches the content-addressed outcome cache
//! (DESIGN.md §15): structurally identical mutants are proved once per
//! campaign, and a re-run over an unchanged corpus skips every
//! already-judged seed and mutant while reproducing the kill matrix
//! byte for byte.
//!
//! Exit code 0 = campaign passed, 1 = escapes/false alarms/crashes (or
//! too few semantic mutants), 2 = usage error.

use sbif::cache::ResultCache;
use sbif::fuzz::{default_pipeline_recorded, run_campaign_with_cache, Arch, CampaignConfig, FaultModel};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sbif-fuzz [--smoke] [--seed N] [--jobs N] [--arch A]... [--n W]...\n\
         \x20               [--model M]... [--count K] [--certify] [--no-shrink]\n\
         \x20               [--json FILE] [--corpus-dir DIR] [--min-semantic K]\n\
         \x20               [--metrics-out FILE] [--cache-dir DIR]\n\
         archs: nonrestoring restoring array srt\n\
         models: {}",
        FaultModel::all().map(|m| m.name()).join(" ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = CampaignConfig::default();
    let mut smoke = false;
    let mut archs: Vec<Arch> = Vec::new();
    let mut widths: Vec<usize> = Vec::new();
    let mut models: Vec<FaultModel> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut corpus_dir: Option<String> = None;
    let mut min_semantic: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    cfg.jobs = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut i = 0;
    while i < args.len() {
        let parse_num = |k: usize| args.get(k).and_then(|s| s.parse::<usize>().ok());
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--seed" => {
                let Some(seed) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok())
                else {
                    return usage();
                };
                cfg.seed = seed;
                i += 2;
            }
            "--jobs" => {
                let Some(jobs) = parse_num(i + 1) else { return usage() };
                cfg.jobs = jobs.max(1);
                i += 2;
            }
            "--arch" => {
                let Some(a) = args.get(i + 1).and_then(|s| Arch::parse(s)) else {
                    return usage();
                };
                archs.push(a);
                i += 2;
            }
            "--n" => {
                let Some(w) = parse_num(i + 1) else { return usage() };
                if w < 2 {
                    eprintln!("divider width must be at least 2 bits");
                    return ExitCode::from(2);
                }
                widths.push(w);
                i += 2;
            }
            "--model" => {
                let Some(m) = args.get(i + 1).and_then(|s| FaultModel::parse(s)) else {
                    return usage();
                };
                models.push(m);
                i += 2;
            }
            "--count" => {
                let Some(k) = parse_num(i + 1) else { return usage() };
                cfg.per_model = k;
                i += 2;
            }
            "--certify" => {
                cfg.certify = true;
                i += 1;
            }
            "--no-shrink" => {
                cfg.shrink = false;
                i += 1;
            }
            "--json" => {
                let Some(p) = args.get(i + 1) else { return usage() };
                json_path = Some(p.clone());
                i += 2;
            }
            "--corpus-dir" => {
                let Some(p) = args.get(i + 1) else { return usage() };
                corpus_dir = Some(p.clone());
                i += 2;
            }
            "--min-semantic" => {
                let Some(k) = parse_num(i + 1) else { return usage() };
                min_semantic = Some(k);
                i += 2;
            }
            "--metrics-out" => {
                let Some(p) = args.get(i + 1) else { return usage() };
                metrics_out = Some(p.clone());
                i += 2;
            }
            "--cache-dir" => {
                let Some(p) = args.get(i + 1) else { return usage() };
                cache_dir = Some(p.clone());
                i += 2;
            }
            _ => return usage(),
        }
    }
    if smoke {
        // Fixed profile: only --jobs/--json/--corpus-dir may vary, so
        // that every CI run fuzzes the same mutant population.
        let jobs = cfg.jobs;
        let certify = cfg.certify;
        cfg = CampaignConfig::smoke(jobs);
        cfg.certify = certify;
        min_semantic = min_semantic.or(Some(200));
    }
    if !archs.is_empty() {
        cfg.archs = archs;
    }
    if !widths.is_empty() {
        cfg.widths = widths;
    }
    if !models.is_empty() {
        cfg.models = models;
    }

    println!(
        "sbif-fuzz: seed {:#x}, {} jobs, archs [{}], widths {:?}, {} mutants per model",
        cfg.seed,
        cfg.jobs,
        cfg.archs.iter().map(|a| a.name()).collect::<Vec<_>>().join(", "),
        cfg.widths,
        cfg.per_model
    );
    let cache = match &cache_dir {
        Some(dir) => match ResultCache::on_disk(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("cannot open cache dir {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    // One recorder observes every verifier run of the campaign, so the
    // sbif.* totals in --metrics-out measure the actual symbolic work —
    // on a warm cache they drop while the kill matrix stays identical.
    let rec = sbif::trace::Recorder::new();
    let pipeline = default_pipeline_recorded(cfg.certify, cfg.max_terms, rec.clone());
    let report = run_campaign_with_cache(&cfg, &pipeline, cache.as_ref());
    print!("{}", report.human_summary());

    if let Some(path) = &metrics_out {
        report.record_metrics(&rec);
        if let Err(e) = std::fs::write(path, rec.finish().to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("metrics report written to {path}");
    }
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.kill_matrix_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("kill matrix written to {path}");
    }
    if let Some(dir) = &corpus_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        for e in &report.escapes {
            let Some(w) = &e.witness else { continue };
            let stem = format!("{}_{}_{}_n{}_o{}", e.kind, e.arch, e.model, w.n, e.ordinal);
            for (suffix, text) in [("bnet", &w.full_bnet), ("cone.bnet", &w.cone_bnet)] {
                let path = format!("{dir}/{stem}.{suffix}");
                if let Err(err) = std::fs::write(&path, text) {
                    eprintln!("cannot write {path}: {err}");
                    return ExitCode::from(2);
                }
            }
            println!("shrunk {} witness written to {dir}/{stem}.bnet", e.kind);
        }
    }

    let mut ok = report.success();
    if let Some(min) = min_semantic {
        if report.total_semantic() < min {
            eprintln!(
                "campaign produced only {} semantics-changing mutants (< {min})",
                report.total_semantic()
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
