//! `sbif-verify` — fully automatic divider verification from the command
//! line.
//!
//! ```text
//! sbif-verify <netlist> [--vc1-only] [--no-sbif] [--certify] [--max-terms N] [--jobs N]
//!             [--cache-dir DIR] [--trace pretty|json] [--trace-out FILE]
//!             [--metrics-out FILE] [--analysis-out FILE]
//!             [--budget-conflicts N] [--budget-terms N] [--budget-nodes N]
//!             [--budget-sat N] [--timeout MS]
//! sbif-verify --demo <n> [--arch A]        # generate and verify an n-bit divider
//! sbif-verify --emit <n> <file> [--arch A] # write an n-bit divider as BNET
//! ```
//!
//! `--arch` picks the generated architecture: `nonrestoring` (the
//! default), `restoring`, `srt` or `array`.
//!
//! The `--budget-*` flags attach the resource governor (DESIGN.md
//! §16): `--budget-conflicts` caps the committed SBIF solver conflicts
//! (exhaustion skips the remaining windows and continues with the
//! classes found — sound, possibly slower downstream),
//! `--budget-terms` caps backward-rewriting terms (exhaustion is an
//! *inconclusive* verdict instead of a hard abort), `--budget-nodes`
//! caps the vc2 BDD's live nodes (exhaustion falls back to a bounded
//! SAT check of the range property, itself capped by `--budget-sat`).
//! All of those are deterministic units — whether a budget trips is
//! byte-identical for any `--jobs` value. `--timeout MS` arms a
//! wall-clock watchdog that only ever cancels; a cancelled run is
//! reported inconclusive and never cached. A budget-limited run exits
//! 0 with `VERDICT: inconclusive (…)` naming the exhausted stage.
//!
//! Netlist files may be BNET (`.bnet`, anything else), AIGER ASCII
//! (`.aag`) or ISCAS BENCH (`.bench`/`.isc`) — the format is chosen by
//! extension. BNET files are first run through the `sbif-lint` static
//! analyzer; hard errors (cycles, undriven signals, …) abort before
//! verification (the AIGER/BENCH parsers reject those structurally,
//! with line/column positions). File inputs are cone-of-influence
//! restricted to their declared outputs before verification, so
//! synthesis leftovers outside the divider cone cost nothing.
//! With `--certify`, every UNSAT answer of the flow is replayed through
//! the independent DRAT checker and the certificate statistics are
//! reported; a rejected certificate means the run is *not* trusted.
//!
//! `--cache-dir DIR` attaches the content-addressed result cache
//! (DESIGN.md §15): the design's canonical cone digests plus the flow
//! configuration (with `--jobs` normalized away) form the key; a hit
//! replays the stored verdict and the byte-identical `sbif-metrics-v1`
//! stub of the original run without verifying anything, a miss proves
//! and stores. The same cache directory is shared with `sbif-serve`
//! and `sbif-fuzz --cache-dir`.
//!
//! `--trace pretty` prints the live phase tree (spans, wall times) to
//! stderr; `--trace json` emits the NDJSON event stream instead
//! (`--trace-out FILE` redirects either to a file). `--metrics-out FILE`
//! writes the deterministic metrics report — byte-identical for any
//! `--jobs` value — as canonical JSON (see DESIGN.md §12).
//! `--analysis-out FILE` dumps the static-analysis database (ternary
//! facts, structural-hash classes, cone mask, shadow signatures; see
//! DESIGN.md §14) as canonical JSON.
//!
//! The netlist must expose the Definition-1 interface: input buses
//! `r0[0..2n−3]` and `d[0..n−2]` (the sign bits are constant 0 per the
//! paper) and output buses `q[0..n−1]` and `r[0..2n−2]`.
//!
//! Exit code 0 = verified correct *or* inconclusive under a budget
//! (the run itself succeeded; the budget was the limit), 1 =
//! refuted/failed, 2 = usage or resource error.

use sbif::check::lint_bnet;
use sbif::core::verify::{DividerVerifier, Vc1Outcome, VerifierConfig};
use sbif::netlist::build::{
    array_divider, nonrestoring_divider, restoring_divider, srt_divider, Divider,
};
use sbif::netlist::io::{read_netlist, write_bnet, Format};
use sbif::serve::verify_cached;
use sbif::trace::{NdjsonSink, PrettySink, Recorder};
use sbif::cache::ResultCache;
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sbif-verify <netlist(.bnet|.aag|.bench)> [--vc1-only] [--no-sbif] [--certify]\n\
         \x20                [--max-terms N] [--jobs N] [--cache-dir DIR]\n\
         \x20                [--trace pretty|json] [--trace-out FILE] [--metrics-out FILE]\n\
         \x20                [--analysis-out FILE] [--budget-conflicts N] [--budget-terms N]\n\
         \x20                [--budget-nodes N] [--budget-sat N] [--timeout MS]\n\
         \x20      sbif-verify --demo <n> [--arch nonrestoring|restoring|srt|array]\n\
         \x20      sbif-verify --emit <n> <file> [--arch nonrestoring|restoring|srt|array]"
    );
    ExitCode::from(2)
}

/// Builds an `n`-bit divider of the named architecture.
fn build_arch(arch: &str, n: usize) -> Option<Divider> {
    match arch {
        "nonrestoring" => Some(nonrestoring_divider(n)),
        "restoring" => Some(restoring_divider(n)),
        "srt" => Some(srt_divider(n)),
        "array" => Some(array_divider(n)),
        _ => None,
    }
}

/// How the trace event stream is rendered (`--trace`).
#[derive(Clone, Copy, PartialEq)]
enum TraceMode {
    Pretty,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    // --emit: write a generated divider and exit.
    if args[0] == "--emit" {
        let (Some(n), Some(path)) = (args.get(1), args.get(2)) else {
            return usage();
        };
        let Ok(n) = n.parse::<usize>() else { return usage() };
        if n < 2 {
            eprintln!("divisor width must be at least 2 bits");
            return ExitCode::from(2);
        }
        let arch = match (args.get(3).map(String::as_str), args.get(4)) {
            (Some("--arch"), Some(a)) => a.as_str(),
            (None, _) => "nonrestoring",
            _ => return usage(),
        };
        let Some(div) = build_arch(arch, n) else {
            eprintln!("unknown architecture {arch:?} (want nonrestoring, restoring, srt or array)");
            return ExitCode::from(2);
        };
        if let Err(e) = std::fs::write(path, write_bnet(&div.netlist)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote the {n}-bit {arch} divider to {path}");
        return ExitCode::SUCCESS;
    }

    // Load or generate the divider. The SBIF window checks fan out over
    // all cores unless --jobs overrides it (results are identical either
    // way; see the sbif::parallel docs).
    let mut config = VerifierConfig::default();
    config.sbif.jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut divider: Option<Divider> = None;
    let mut demo: Option<usize> = None;
    let mut arch = String::from("nonrestoring");
    let mut trace_mode: Option<TraceMode> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut analysis_out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--demo" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                if n < 2 {
                    eprintln!("divisor width must be at least 2 bits");
                    return ExitCode::from(2);
                }
                demo = Some(n);
                i += 2;
            }
            "--arch" => {
                let Some(a) = args.get(i + 1) else { return usage() };
                arch = a.clone();
                i += 2;
            }
            "--budget-conflicts" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                config.govern.sbif_conflicts = Some(v);
                i += 2;
            }
            "--budget-terms" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                config.govern.rewrite_terms = Some(v);
                i += 2;
            }
            "--budget-nodes" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                config.govern.vc2_live_nodes = Some(v);
                i += 2;
            }
            "--budget-sat" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                config.govern.vc2_sat_conflicts = Some(v);
                i += 2;
            }
            "--timeout" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                config.govern.timeout_ms = Some(v);
                i += 2;
            }
            "--vc1-only" => {
                config.check_vc2 = false;
                i += 1;
            }
            "--no-sbif" => {
                config.use_sbif = false;
                i += 1;
            }
            "--certify" => {
                config.certify = true;
                i += 1;
            }
            "--jobs" => {
                let Some(jobs) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok())
                else {
                    return usage();
                };
                config.sbif.jobs = jobs.max(1);
                i += 2;
            }
            "--trace" => {
                let Some(mode) = args.get(i + 1) else { return usage() };
                trace_mode = match mode.as_str() {
                    "pretty" => Some(TraceMode::Pretty),
                    "json" => Some(TraceMode::Json),
                    other => {
                        eprintln!("--trace wants 'pretty' or 'json', got {other:?}");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            "--trace-out" => {
                let Some(path) = args.get(i + 1) else { return usage() };
                trace_out = Some(path.clone());
                i += 2;
            }
            "--metrics-out" => {
                let Some(path) = args.get(i + 1) else { return usage() };
                metrics_out = Some(path.clone());
                i += 2;
            }
            "--analysis-out" => {
                let Some(path) = args.get(i + 1) else { return usage() };
                analysis_out = Some(path.clone());
                i += 2;
            }
            "--cache-dir" => {
                let Some(path) = args.get(i + 1) else { return usage() };
                cache_dir = Some(path.clone());
                i += 2;
            }
            "--max-terms" => {
                let Some(limit) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok())
                else {
                    return usage();
                };
                config.rewrite.max_terms = Some(limit);
                i += 2;
            }
            path if !path.starts_with('-') => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let format = Format::from_path(path);
                // Static analysis before anything interprets a BNET
                // file: a cyclic or undriven netlist must not reach
                // polynomial extraction or SAT encoding. The AIGER and
                // BENCH parsers enforce those invariants themselves.
                if matches!(format, Format::Bnet) {
                    let lint = lint_bnet(&text);
                    for issue in &lint.issues {
                        eprintln!("{path}: {issue}");
                    }
                    if lint.num_errors() > 0 {
                        eprintln!(
                            "{path}: {} lint error(s) — refusing to verify",
                            lint.num_errors()
                        );
                        return ExitCode::from(2);
                    }
                }
                let nl = match read_netlist(&text, format) {
                    Ok(nl) => nl,
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                // Restrict file inputs to the cone of influence of
                // their declared outputs: synthesis leftovers outside
                // the divider cone must not slow verification down or
                // perturb the cache key.
                match Divider::from_netlist(nl.restricted_to_outputs()) {
                    Ok(d) => divider = Some(d),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            _ => return usage(),
        }
    }
    if divider.is_none() {
        if let Some(n) = demo {
            match build_arch(&arch, n) {
                Some(d) => divider = Some(d),
                None => {
                    eprintln!(
                        "unknown architecture {arch:?} (want nonrestoring, restoring, srt or array)"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    }
    let Some(divider) = divider else { return usage() };
    // A file target without an explicit mode means the machine stream.
    if trace_out.is_some() && trace_mode.is_none() {
        trace_mode = Some(TraceMode::Json);
    }

    // The content-addressed result cache: a hit replays the stored
    // verdict and metrics stub byte-identically and skips the run
    // (inconclusive entries only hit under the exact same budgets; see
    // DESIGN.md §16).
    let cache = match &cache_dir {
        Some(dir) => match ResultCache::on_disk(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("cannot open cache dir {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    // One recorder observes the whole run; sinks stream events as the
    // phases execute, the deterministic payload lands in the report.
    let recorder = Recorder::new();
    if let Some(mode) = trace_mode {
        let w: Box<dyn Write + Send> = match &trace_out {
            Some(path) => match std::fs::File::create(path) {
                Ok(f) => Box::new(std::io::BufWriter::new(f)),
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            None => Box::new(std::io::stderr()),
        };
        match mode {
            TraceMode::Json => recorder.attach(Box::new(NdjsonSink::new(w))),
            TraceMode::Pretty => recorder.attach(Box::new(PrettySink::new(w))),
        }
    }

    println!(
        "verifying {}-bit divider ({} signals) against Definition 1 …",
        divider.n,
        divider.netlist.num_signals()
    );
    let out = match verify_cached(&divider, config, cache.as_ref(), recorder) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aborted: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, &out.metrics_json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("metrics report written to {path}");
    }
    if let Some(path) = &analysis_out {
        // The analysis database is deterministic, so recomputing it on
        // a fresh verifier matches what the run (or the cached original
        // run) observed.
        let db = match DividerVerifier::new(&divider).with_config(config).analysis_db() {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot analyze: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, db.to_json(&divider.netlist)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("analysis database written to {path}");
    }
    if let Some(report) = out.report.as_deref() {
        match &report.vc1.outcome {
            Vc1Outcome::Proven => println!(
                "vc1 (R0 = Q*D + R): PROVEN   [{} equivalences, peak {} terms, {:?} + {:?}]",
                report.vc1.sbif.proven,
                report.vc1.rewrite.peak_terms,
                report.vc1.sbif_time,
                report.vc1.rewrite_time
            ),
            Vc1Outcome::Refuted { dividend, divisor } => {
                println!("vc1 (R0 = Q*D + R): REFUTED  [{dividend} / {divisor} divides wrong]")
            }
            Vc1Outcome::Inconclusive { residual_terms } => {
                println!("vc1 (R0 = Q*D + R): UNDECIDED [{residual_terms} residual terms]")
            }
            Vc1Outcome::Exhausted(e) => {
                println!("vc1 (R0 = Q*D + R): EXHAUSTED [{e}]")
            }
        }
        if let Some(vc2) = &report.vc2 {
            println!(
                "vc2 (0 <= R < D):   {}  [peak {} BDD nodes, {:?}]",
                if vc2.holds { "PROVEN " } else { "REFUTED" },
                vc2.peak_nodes,
                report.vc2_time
            );
        }
        if let Some(fb) = &report.vc2_fallback {
            println!(
                "vc2 SAT fallback:   {}  [{} of {} conflicts]",
                match fb.holds {
                    Some(true) => "PROVEN ",
                    Some(false) => "REFUTED",
                    None => "UNKNOWN",
                },
                fb.conflicts,
                fb.budget
            );
        }
        if config.certify {
            let cert = report.certificates();
            println!(
                "certificates:       {} UNSAT answers DRAT-checked, {} rejected, {:.1}% of logged steps used",
                cert.checked,
                cert.rejected,
                100.0 * cert.used_fraction()
            );
        }
        if report.cancelled {
            eprintln!("watchdog: run cancelled by --timeout; result not cached");
        }
    }
    let cached = if out.cached { " (cached)" } else { "" };
    match out.verdict.as_str() {
        "correct" => {
            println!("VERDICT: correct{cached}");
            ExitCode::SUCCESS
        }
        "inconclusive" => {
            match &out.exhausted_at {
                Some(e) => println!("VERDICT: inconclusive ({e}){cached}"),
                None => println!("VERDICT: inconclusive{cached}"),
            }
            ExitCode::SUCCESS
        }
        _ => {
            println!("VERDICT: NOT correct{cached}");
            ExitCode::FAILURE
        }
    }
}
