//! `sbif-trace` — offline tooling for the trace formats (DESIGN.md §12).
//!
//! ```text
//! sbif-trace check <file>   # validate an NDJSON event stream
//! sbif-trace det <file>     # print the "det" subtree of a bench JSON
//! ```
//!
//! `check` enforces the stream contract of `sbif-verify --trace json`:
//! every line is a JSON object, the event kinds come from the closed
//! set, span open/close pairs balance, and the embedded metrics report
//! holds unsigned integers only. It prints a one-line summary and is
//! the NDJSON gate of `scripts/verify.sh`.
//!
//! `det` parses a `BENCH_*.json` file written by the `sbif-bench`
//! binaries, extracts its deterministic `"det"` object and prints it
//! canonically (sorted keys, fixed spacing). `scripts/bench_check.sh`
//! diffs that rendering against the checked-in baselines, so wall-time
//! fields elsewhere in the file never enter the comparison.
//!
//! Pass `-` as the file to read from stdin. Exit code 0 = well-formed,
//! 1 = contract violation, 2 = usage or I/O error.

use sbif::trace::check_stream;
use sbif::trace::json::parse;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: sbif-trace check <ndjson-file>\n\
         \x20      sbif-trace det <bench-json-file>\n\
         ('-' reads from stdin)"
    );
    ExitCode::from(2)
}

fn read_input(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("cannot read stdin: {e}");
            return Err(ExitCode::from(2));
        }
        return Ok(text);
    }
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path), None) = (args.first(), args.get(1), args.get(2)) else {
        return usage();
    };
    let text = match read_input(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match cmd.as_str() {
        "check" => match check_stream(&text) {
            Ok(s) => {
                println!(
                    "{path}: ok — {} events ({} spans, {} counters, {} gauges, {} reports)",
                    s.events, s.spans, s.counters, s.gauges, s.reports
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        },
        "det" => {
            let value = match parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("{path}: not valid JSON: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(det) = value.as_object().and_then(|o| o.get("det")) else {
                eprintln!("{path}: no top-level \"det\" object");
                return ExitCode::FAILURE;
            };
            println!("{}", det.to_canonical());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
