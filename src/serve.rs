//! `sbif-serve` — the verification job server (DESIGN.md §15).
//!
//! A long-running daemon over a **local Unix socket** speaking
//! line-delimited JSON (`sbif-serve-v1`). Each connection sends one
//! request object per line and reads tagged response lines; jobs on
//! different connections run concurrently in their own threads, all
//! sharing one content-addressed [`ResultCache`], so a design any job
//! has already judged — under the same flow configuration — is
//! answered from the cache with its stored verdict and the
//! byte-identical `sbif-metrics-v1` stub of the original run.
//!
//! # Protocol
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op": "verify", "id": 1, "demo": 8}
//! {"op": "verify", "id": 2, "format": "aag", "source": "aag 0 0 0 0 0\n",
//!  "jobs": 4, "trace": true, "vc1_only": true, "certify": true, "max_terms": 1000000}
//! {"op": "ping"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! `demo` generates an n-bit non-restoring divider; `format`/`source`
//! carry a netlist as text (`bnet`, `aag` or `bench`), which is parsed,
//! cone-of-influence restricted to its declared outputs
//! ([`Netlist::restricted_to_outputs`]) and bound to the Definition-1
//! divider interface. `jobs` sets the SBIF worker count for this job
//! (verdicts and logical metrics are identical for any value).
//!
//! Responses — every job-scoped line carries the request's `id`:
//!
//! ```text
//! {"job": 1, "ev": "accepted"}
//! {"job": 1, "ev": "trace", "line": "{\"ev\": \"span_open\", ...}"}
//! {"job": 1, "ev": "result", "verdict": "correct", "cached": false, "n": 8,
//!  "metrics": "<canonical sbif-metrics-v1 JSON, escaped>"}
//! {"job": 2, "ev": "error", "message": "..."}
//! {"ev": "pong"}   {"ev": "stats", "serve.jobs": 3, ...}   {"ev": "bye"}
//! ```
//!
//! With `"trace": true` the job streams its live NDJSON trace, one
//! event per `trace` response; unescaping the `line` fields in order
//! reconstructs exactly the stream `sbif-verify --trace json` would
//! have written, so `sbif-trace check` validates it unchanged. A
//! cache-hit job streams no trace events (nothing ran).
//!
//! The same module hosts the cached-verification flow shared with the
//! `sbif-verify` CLI: [`flow_fingerprint`], [`design_key`],
//! [`verify_cached`] and [`load_divider`].

use sbif_analysis::design_digest;
use sbif_cache::{Entry, ResultCache};
use sbif_check::lint_bnet;
use sbif_core::verify::{DividerVerifier, VerifierConfig};
use sbif_netlist::build::{nonrestoring_divider, Divider};
use sbif_netlist::io::{read_netlist, Format};
use sbif_trace::json::{escape, parse, Value};
use sbif_trace::{NdjsonSink, Recorder};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// The cached verification flow (shared with the sbif-verify CLI)
// ---------------------------------------------------------------------

/// The flow-configuration fingerprint bound into every cache key.
///
/// Everything that can change a verdict or the deterministic metrics
/// payload is included; the SBIF worker count is normalized away
/// because the jobs-determinism contract (DESIGN.md §12) guarantees it
/// changes neither — so runs at `--jobs 1` and `--jobs 4` share cache
/// entries. The governor is normalized away too: a governed run that
/// never trips a budget is byte-identical to the ungoverned run
/// (budgets only act on overrun), `Proven`/`Refuted` are valid under
/// any budget, and budget-relative `Inconclusive` entries carry the
/// exact budget as a stamp checked at lookup (DESIGN.md §16).
pub fn flow_fingerprint(config: &VerifierConfig) -> String {
    let mut c = *config;
    c.sbif.jobs = 0;
    c.govern = sbif_govern::GovernConfig::default();
    format!("sbif-verify-flow-v1 {c:?}")
}

/// The content-addressed cache key of one (design, flow config) pair:
/// the 128-bit design key plus the per-cone digests used for
/// dirty-cone accounting.
pub fn design_key(div: &Divider, config: &VerifierConfig) -> (u128, Vec<(u64, bool)>) {
    let dd = design_digest(
        &div.netlist,
        Some(div.constraint),
        &flow_fingerprint(config),
    );
    let cones = dd.cones.iter().map(|c| (c.core, c.phase)).collect();
    (dd.key, cones)
}

/// What one verification job produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// `"correct"`, `"not-correct"` or `"inconclusive"`.
    pub verdict: String,
    /// Convenience: `verdict == "correct"`.
    pub correct: bool,
    /// Human-readable description of the exhaustion behind an
    /// `"inconclusive"` verdict (e.g. `"vc2 exhausted bdd-live-nodes
    /// (… spent of … budget)"`), `None` otherwise.
    pub exhausted_at: Option<String>,
    /// `true` when the verdict came from the cache (nothing ran).
    pub cached: bool,
    /// `true` when this run wrote a fresh cache entry.
    pub stored: bool,
    /// The canonical `sbif-metrics-v1` JSON of the run that judged this
    /// design — replayed byte-identically on every later hit.
    pub metrics_json: String,
    /// The full report of a fresh run (`None` on cache hits, where
    /// nothing ran and only the stored stub exists).
    pub report: Option<Box<sbif_core::verify::VerificationReport>>,
}

/// Verifies `div` under `config`, resolving and feeding the result
/// cache when one is attached. On a hit the stored verdict and metrics
/// stub are returned verbatim and the verifier never runs; `recorder`
/// observes only real runs, so trace streams and `sbif.*` totals
/// measure actual work.
///
/// Governed runs compose with caching per the DESIGN.md §16 rules:
/// `Proven`/`Refuted` entries are valid under any budget, an
/// `Inconclusive` entry is stamped with the exact deterministic budget
/// that produced it and only hits under that same stamp, and
/// watchdog-cancelled runs are never stored at all.
///
/// # Errors
///
/// The verifier's resource errors (term-limit blow-up), as a message.
/// Aborted runs are never cached.
pub fn verify_cached(
    div: &Divider,
    config: VerifierConfig,
    cache: Option<&ResultCache>,
    recorder: Recorder,
) -> Result<JobOutcome, String> {
    let stamp = config.govern.budget_stamp();
    let keyed = cache.map(|c| {
        let (key, cones) = design_key(div, &config);
        (c, key, cones)
    });
    if let Some((c, key, cones)) = &keyed {
        if let Some(entry) = c.lookup(*key, cones).entry {
            // An inconclusive entry is budget-relative: only replay it
            // for the exact deterministic budget it was produced under.
            let usable = entry.verdict != "inconclusive"
                || entry.stamp.as_deref() == Some(stamp.as_str());
            if usable {
                let correct = entry.verdict == "correct";
                return Ok(JobOutcome {
                    verdict: entry.verdict,
                    correct,
                    exhausted_at: None,
                    cached: true,
                    stored: false,
                    metrics_json: entry.payload,
                    report: None,
                });
            }
        }
    }
    let report = DividerVerifier::new(div)
        .with_config(config)
        .with_recorder(recorder)
        .verify()
        .map_err(|e| e.to_string())?;
    let certified = !config.certify || report.certificates().all_accepted();
    let correct = report.is_correct() && certified;
    let (verdict, exhausted_at) = match &report.verdict {
        sbif_govern::Verdict::Inconclusive { exhausted_at } => {
            ("inconclusive", Some(exhausted_at.to_string()))
        }
        _ if correct => ("correct", None),
        _ => ("not-correct", None),
    };
    let metrics_json = report.metrics.to_json();
    let mut stored = false;
    // Watchdog-cancelled runs are not reproducible — never cache them.
    if !report.cancelled {
        if let Some((c, key, cones)) = &keyed {
            let mut entry = Entry::new(verdict, &metrics_json);
            if verdict == "inconclusive" {
                entry = entry.with_stamp(&stamp);
            }
            stored = c.store(*key, cones, &entry).is_ok();
        }
    }
    Ok(JobOutcome {
        verdict: verdict.to_string(),
        correct,
        exhausted_at,
        cached: false,
        stored,
        metrics_json,
        report: Some(Box::new(report)),
    })
}

/// Parses a netlist in any supported frontend format, lints it (BNET
/// carries the full static analyzer; the AIGER/BENCH parsers already
/// reject cycles and undriven logic structurally), restricts it to the
/// cone of influence of its declared outputs and binds it to the
/// Definition-1 divider interface.
///
/// # Errors
///
/// Lint errors, parse errors (with line/column) and interface-binding
/// failures, as a message.
pub fn load_divider(text: &str, format: Format) -> Result<Divider, String> {
    if matches!(format, Format::Bnet) {
        let lint = lint_bnet(text);
        if lint.num_errors() > 0 {
            let first = lint
                .issues
                .iter()
                .map(|i| i.to_string())
                .next()
                .unwrap_or_default();
            return Err(format!(
                "{} lint error(s) — refusing to verify ({first})",
                lint.num_errors()
            ));
        }
    }
    let nl = read_netlist(text, format).map_err(|e| e.to_string())?;
    Divider::from_netlist(nl.restricted_to_outputs())
}

// ---------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Path of the Unix socket to listen on. A leftover file from a
    /// killed daemon is detected (nobody answers a connect probe),
    /// unlinked and rebound; a *live* daemon's socket is refused.
    pub socket: PathBuf,
    /// Persist the shared result cache here (`None` = in-memory only).
    /// Also hosts the crash-recovery job journal (`journal/`).
    pub cache_dir: Option<PathBuf>,
    /// SBIF worker count for jobs that don't send `"jobs"`.
    pub default_jobs: usize,
    /// Backpressure bound: at most this many verification jobs run at
    /// once; further `verify` requests are rejected with a `rejected`
    /// response carrying `retry_after_ms`. `0` means unbounded.
    pub max_active: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            socket: PathBuf::from("sbif-serve.sock"),
            cache_dir: None,
            default_jobs: 1,
            max_active: 64,
        }
    }
}

#[derive(Default)]
struct Stats {
    connections: AtomicU64,
    jobs: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_recovered: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_stores: AtomicU64,
}

impl Stats {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::SeqCst);
    }

    /// One `stats` response line; the dotted keys double as the
    /// counter names of the daemon's final metrics report.
    fn to_line(&self) -> String {
        format!(
            "{{\"ev\": \"stats\", \"serve.connections\": {}, \"serve.jobs\": {}, \
             \"serve.jobs_ok\": {}, \"serve.jobs_failed\": {}, \
             \"serve.jobs_panicked\": {}, \"serve.jobs_rejected\": {}, \
             \"serve.jobs_recovered\": {}, \"cache.hits\": {}, \
             \"cache.misses\": {}, \"cache.stores\": {}}}",
            self.connections.load(Ordering::SeqCst),
            self.jobs.load(Ordering::SeqCst),
            self.jobs_ok.load(Ordering::SeqCst),
            self.jobs_failed.load(Ordering::SeqCst),
            self.jobs_panicked.load(Ordering::SeqCst),
            self.jobs_rejected.load(Ordering::SeqCst),
            self.jobs_recovered.load(Ordering::SeqCst),
            self.cache_hits.load(Ordering::SeqCst),
            self.cache_misses.load(Ordering::SeqCst),
            self.cache_stores.load(Ordering::SeqCst),
        )
    }

    fn record(&self, rec: &Recorder) {
        rec.add("serve.connections", self.connections.load(Ordering::SeqCst));
        rec.add("serve.jobs", self.jobs.load(Ordering::SeqCst));
        rec.add("serve.jobs_ok", self.jobs_ok.load(Ordering::SeqCst));
        rec.add("serve.jobs_failed", self.jobs_failed.load(Ordering::SeqCst));
        rec.add("serve.jobs_panicked", self.jobs_panicked.load(Ordering::SeqCst));
        rec.add("serve.jobs_rejected", self.jobs_rejected.load(Ordering::SeqCst));
        rec.add("serve.jobs_recovered", self.jobs_recovered.load(Ordering::SeqCst));
        rec.add("cache.hits", self.cache_hits.load(Ordering::SeqCst));
        rec.add("cache.misses", self.cache_misses.load(Ordering::SeqCst));
        rec.add("cache.stores", self.cache_stores.load(Ordering::SeqCst));
    }
}

struct Ctx {
    cache: ResultCache,
    stats: Stats,
    stop: AtomicBool,
    socket: PathBuf,
    default_jobs: usize,
    max_active: usize,
    active: AtomicU64,
    job_seq: AtomicU64,
    /// Crash-recovery journal directory (persistent caches only).
    journal_dir: Option<PathBuf>,
}

/// RAII guard for the backpressure slot count.
struct ActiveJob<'a>(&'a Ctx);

impl<'a> ActiveJob<'a> {
    /// Claims a job slot, or `None` when the daemon is at capacity.
    fn claim(ctx: &'a Ctx) -> Option<ActiveJob<'a>> {
        loop {
            let cur = ctx.active.load(Ordering::SeqCst);
            if ctx.max_active > 0 && cur >= ctx.max_active as u64 {
                return None;
            }
            if ctx
                .active
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(ActiveJob(ctx));
            }
        }
    }
}

impl Drop for ActiveJob<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running job server. Splitting bind from
/// [`Server::run`] lets the caller announce readiness after the socket
/// exists and before the accept loop blocks.
pub struct Server {
    listener: UnixListener,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the socket and opens (or creates) the shared cache.
    ///
    /// A socket file left behind by a SIGKILLed daemon is recovered:
    /// before unlinking anything the path is probed with a connect —
    /// only a *dead* peer (connection refused) is swept and rebound; a
    /// live daemon turns into an `AddrInUse` error instead of being
    /// hijacked.
    ///
    /// # Errors
    ///
    /// Socket binding or cache-directory creation failures, and
    /// `AddrInUse` when another daemon already serves the socket.
    pub fn bind(opts: &ServeOptions) -> io::Result<Server> {
        let listener = bind_or_recover(&opts.socket)?;
        let cache = match &opts.cache_dir {
            Some(dir) => ResultCache::on_disk(dir)?,
            None => ResultCache::in_memory(),
        };
        let journal_dir = match &opts.cache_dir {
            Some(dir) => {
                let j = dir.join("journal");
                std::fs::create_dir_all(&j)?;
                Some(j)
            }
            None => None,
        };
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                cache,
                stats: Stats::default(),
                stop: AtomicBool::new(false),
                socket: opts.socket.clone(),
                default_jobs: opts.default_jobs.max(1),
                max_active: opts.max_active,
                active: AtomicU64::new(0),
                job_seq: AtomicU64::new(0),
                journal_dir,
            }),
        })
    }

    /// Whether the shared cache persists to disk.
    pub fn cache_is_persistent(&self) -> bool {
        self.ctx.cache.is_persistent()
    }

    /// Serves connections until a `shutdown` request arrives, then
    /// joins every worker, removes the socket file and returns the
    /// final `serve.*`/`cache.*` counters. Journaled jobs orphaned by
    /// a crash of the previous daemon instance are re-run first (their
    /// verdicts land in the shared cache, so the original client can
    /// simply resubmit and hit).
    pub fn run(self) -> sbif_trace::MetricsReport {
        recover_journal(&self.ctx);
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.ctx.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let ctx = self.ctx.clone();
            workers.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, &ctx);
            }));
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.ctx.socket);
        let rec = Recorder::new();
        self.ctx.stats.record(&rec);
        rec.finish()
    }
}

/// Binds `socket`, recovering a stale file from a killed daemon: on
/// `AddrInUse` the path is connect-probed — a refused connect means no
/// listener survives behind the file, so it is unlinked and rebound; a
/// successful probe means a live daemon owns it and binding fails.
fn bind_or_recover(socket: &PathBuf) -> io::Result<UnixListener> {
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(e) => Err(e),
    }
}

/// Re-runs every journaled request a crashed daemon left behind. Each
/// recovery is panic-isolated like a live job; the journal file is
/// removed afterwards either way, so a deterministically crashing job
/// cannot wedge the daemon in a restart loop.
fn recover_journal(ctx: &Arc<Ctx>) {
    let Some(jdir) = &ctx.journal_dir else { return };
    let Ok(rd) = std::fs::read_dir(jdir) else { return };
    let mut files: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    files.sort();
    for path in files {
        if let Ok(line) = std::fs::read_to_string(&path) {
            if let Ok(Some(obj)) = parse(line.trim()).map(|v| v.as_object().cloned()) {
                ctx.stats.bump(&ctx.stats.jobs_recovered);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let div = divider_of_request(&obj)?;
                    let config = config_of_request(&obj, ctx);
                    verify_cached(&div, config, Some(&ctx.cache), Recorder::new())
                }));
                match run {
                    Ok(Ok(out)) => {
                        record_cache_traffic(ctx, &out);
                        ctx.stats.bump(&ctx.stats.jobs_ok);
                    }
                    Ok(Err(_)) => ctx.stats.bump(&ctx.stats.jobs_failed),
                    Err(_) => ctx.stats.bump(&ctx.stats.jobs_panicked),
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Journals an accepted request line so a daemon crash mid-job leaves
/// a re-runnable record. Written atomically (tmp + rename) next to the
/// cache, removed again by [`JournalEntry::drop`] on completion.
struct JournalEntry {
    path: Option<PathBuf>,
}

impl JournalEntry {
    fn write(ctx: &Ctx, raw: &str) -> JournalEntry {
        let Some(jdir) = &ctx.journal_dir else {
            return JournalEntry { path: None };
        };
        let seq = ctx.job_seq.fetch_add(1, Ordering::SeqCst);
        let path = jdir.join(format!("job-{:08}.json", seq));
        let tmp = jdir.join(format!("job-{:08}.tmp.{}", seq, std::process::id()));
        let ok = std::fs::write(&tmp, raw.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();
        JournalEntry { path: ok.then_some(path) }
    }
}

impl Drop for JournalEntry {
    fn drop(&mut self) {
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn record_cache_traffic(ctx: &Ctx, out: &JobOutcome) {
    ctx.stats.bump(if out.cached {
        &ctx.stats.cache_hits
    } else {
        &ctx.stats.cache_misses
    });
    if out.stored {
        ctx.stats.bump(&ctx.stats.cache_stores);
    }
}

type SharedWriter = Arc<Mutex<BufWriter<UnixStream>>>;

fn send(writer: &SharedWriter, line: &str) -> io::Result<()> {
    // A poisoned writer mutex only means some other thread panicked
    // while holding it (the stream itself is still sound) — recover
    // the guard instead of propagating the panic across connections.
    let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    writeln!(w, "{line}")?;
    w.flush()
}

/// A [`Write`] adapter that chops the NDJSON trace stream of one job
/// into lines and forwards each as a `trace` response, so concurrent
/// jobs on other connections can never interleave into it.
struct JobTraceWriter {
    job: u64,
    out: SharedWriter,
    buf: Vec<u8>,
}

impl Write for JobTraceWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            send(
                &self.out,
                &format!(
                    "{{\"job\": {}, \"ev\": \"trace\", \"line\": \"{}\"}}",
                    self.job,
                    escape(&line)
                ),
            )?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn handle_connection(stream: UnixStream, ctx: &Arc<Ctx>) -> io::Result<()> {
    ctx.stats.bump(&ctx.stats.connections);
    let reader = BufReader::new(stream.try_clone()?);
    let writer: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match parse(&line) {
            Ok(v) => v,
            Err(e) => {
                send(&writer, &error_line(None, &format!("not valid JSON: {e}")))?;
                continue;
            }
        };
        let Some(obj) = parsed.as_object().cloned() else {
            send(&writer, &error_line(None, "request is not a JSON object"))?;
            continue;
        };
        match obj.get("op").and_then(Value::as_str) {
            Some("ping") => send(&writer, "{\"ev\": \"pong\"}")?,
            Some("stats") => send(&writer, &ctx.stats.to_line())?,
            Some("shutdown") => {
                // Flag first, farewell second: a client that fired the
                // request and hung up must still stop the daemon, so
                // the `bye` write is best-effort.
                ctx.stop.store(true, Ordering::SeqCst);
                // Nudge the blocked acceptor so it observes the flag.
                let _ = UnixStream::connect(&ctx.socket);
                let _ = send(&writer, "{\"ev\": \"bye\"}");
                return Ok(());
            }
            Some("verify") => handle_verify(&obj, &line, &writer, ctx)?,
            Some(other) => {
                send(&writer, &error_line(None, &format!("unknown op {other:?}")))?
            }
            None => send(&writer, &error_line(None, "missing \"op\""))?,
        }
    }
    Ok(())
}

fn error_line(job: Option<u64>, message: &str) -> String {
    match job {
        Some(id) => format!(
            "{{\"job\": {id}, \"ev\": \"error\", \"message\": \"{}\"}}",
            escape(message)
        ),
        None => format!("{{\"ev\": \"error\", \"message\": \"{}\"}}", escape(message)),
    }
}

/// Builds the per-job [`VerifierConfig`] from the request's optional
/// `jobs`/`vc1_only`/`certify`/`max_terms` fields plus the per-job
/// governor budgets `budget_conflicts` (SBIF SAT conflicts),
/// `budget_terms` (rewrite terms), `budget_nodes` (vc2 BDD live
/// nodes), `budget_sat` (vc2 SAT-fallback conflicts) and `timeout_ms`
/// (wall-clock watchdog).
fn config_of_request(
    obj: &std::collections::BTreeMap<String, Value>,
    ctx: &Ctx,
) -> VerifierConfig {
    let mut config = VerifierConfig::default();
    config.sbif.jobs = obj
        .get("jobs")
        .and_then(Value::as_u64)
        .map_or(ctx.default_jobs, |j| (j as usize).max(1));
    if matches!(obj.get("vc1_only"), Some(Value::Bool(true))) {
        config.check_vc2 = false;
    }
    if matches!(obj.get("certify"), Some(Value::Bool(true))) {
        config.certify = true;
    }
    if let Some(mt) = obj.get("max_terms").and_then(Value::as_u64) {
        config.rewrite.max_terms = Some(mt as usize);
    }
    let g = &mut config.govern;
    g.sbif_conflicts = obj.get("budget_conflicts").and_then(Value::as_u64);
    g.rewrite_terms = obj.get("budget_terms").and_then(Value::as_u64).map(|t| t as usize);
    g.vc2_live_nodes = obj.get("budget_nodes").and_then(Value::as_u64).map(|n| n as usize);
    g.vc2_sat_conflicts = obj.get("budget_sat").and_then(Value::as_u64);
    g.timeout_ms = obj.get("timeout_ms").and_then(Value::as_u64);
    config
}

fn handle_verify(
    obj: &std::collections::BTreeMap<String, Value>,
    raw: &str,
    writer: &SharedWriter,
    ctx: &Arc<Ctx>,
) -> io::Result<()> {
    let id = obj.get("id").and_then(Value::as_u64).unwrap_or(0);

    // Backpressure: claim a slot before accepting; a full daemon
    // answers with an explicit retry hint instead of queueing unbounded
    // work behind an unbounded thread pile.
    let Some(_slot) = ActiveJob::claim(ctx) else {
        ctx.stats.bump(&ctx.stats.jobs_rejected);
        return send(
            writer,
            &format!("{{\"job\": {id}, \"ev\": \"rejected\", \"retry_after_ms\": 100}}"),
        );
    };
    ctx.stats.bump(&ctx.stats.jobs);
    send(writer, &format!("{{\"job\": {id}, \"ev\": \"accepted\"}}"))?;
    // From here the job is journaled: a daemon crash before the result
    // line leaves a re-runnable record (dropped again on completion).
    let _journal = JournalEntry::write(ctx, raw);

    let div = match divider_of_request(obj) {
        Ok(d) => d,
        Err(msg) => {
            ctx.stats.bump(&ctx.stats.jobs_failed);
            return send(writer, &error_line(Some(id), &msg));
        }
    };
    let config = config_of_request(obj, ctx);

    let recorder = Recorder::new();
    if matches!(obj.get("trace"), Some(Value::Bool(true))) {
        recorder.attach(Box::new(NdjsonSink::new(JobTraceWriter {
            job: id,
            out: writer.clone(),
            buf: Vec::new(),
        })));
    }

    // Panic isolation: an engine bug in one job must not take down the
    // daemon (or the other connections). The poisoned-mutex recovery in
    // `send` keeps the writer usable afterwards.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if matches!(obj.get("crash"), Some(Value::Bool(true)))
            && std::env::var_os("SBIF_SERVE_TEST_CRASH").is_some()
        {
            panic!("injected test crash");
        }
        verify_cached(&div, config, Some(&ctx.cache), recorder)
    }));

    match run {
        Ok(Ok(out)) => {
            record_cache_traffic(ctx, &out);
            ctx.stats.bump(&ctx.stats.jobs_ok);
            let exhausted = out.exhausted_at.as_ref().map_or(String::new(), |e| {
                format!(", \"exhausted_at\": \"{}\"", escape(e))
            });
            send(
                writer,
                &format!(
                    "{{\"job\": {id}, \"ev\": \"result\", \"verdict\": \"{}\", \
                     \"cached\": {}, \"n\": {}{exhausted}, \"metrics\": \"{}\"}}",
                    out.verdict,
                    out.cached,
                    div.n,
                    escape(&out.metrics_json)
                ),
            )
        }
        Ok(Err(msg)) => {
            ctx.stats.bump(&ctx.stats.jobs_failed);
            send(writer, &error_line(Some(id), &msg))
        }
        Err(payload) => {
            ctx.stats.bump(&ctx.stats.jobs_panicked);
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            send(
                writer,
                &format!(
                    "{{\"job\": {id}, \"ev\": \"job_failed\", \"message\": \"{}\"}}",
                    escape(&format!("job panicked: {what}"))
                ),
            )
        }
    }
}

fn divider_of_request(
    obj: &std::collections::BTreeMap<String, Value>,
) -> Result<Divider, String> {
    if let Some(n) = obj.get("demo").and_then(Value::as_u64) {
        if !(2..=64).contains(&n) {
            return Err(format!("demo width must be in 2..=64, got {n}"));
        }
        return Ok(nonrestoring_divider(n as usize));
    }
    let Some(source) = obj.get("source").and_then(Value::as_str) else {
        return Err("verify needs either \"demo\": N or \"format\" + \"source\"".into());
    };
    let format = match obj.get("format").and_then(Value::as_str) {
        Some("bnet") | None => Format::Bnet,
        Some("aag") | Some("aiger") => Format::Aag,
        Some("bench") | Some("isc") => Format::Bench,
        Some(other) => return Err(format!("unknown format {other:?}")),
    };
    load_divider(source, format)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_normalizes_jobs_and_govern_but_binds_everything_else() {
        let base = VerifierConfig::default();
        let mut jobs4 = base;
        jobs4.sbif.jobs = 4;
        assert_eq!(flow_fingerprint(&base), flow_fingerprint(&jobs4));
        // Budgets don't change the design key either — inconclusive
        // entries are bound to their budget by the stamp instead.
        let mut governed = base;
        governed.govern.sbif_conflicts = Some(1000);
        governed.govern.timeout_ms = Some(5000);
        assert_eq!(flow_fingerprint(&base), flow_fingerprint(&governed));

        let mut vc1 = base;
        vc1.check_vc2 = false;
        assert_ne!(flow_fingerprint(&base), flow_fingerprint(&vc1));
        let mut terms = base;
        terms.rewrite.max_terms = Some(123);
        assert_ne!(flow_fingerprint(&base), flow_fingerprint(&terms));
    }

    #[test]
    fn inconclusive_entries_hit_only_under_the_same_budget_stamp() {
        let div = nonrestoring_divider(4);
        let cache = ResultCache::in_memory();
        // A 1-conflict SBIF budget exhausts immediately but the flow
        // degrades (partial classes are sound), so rewriting blows the
        // 1-term budget deterministically → Inconclusive, stored with
        // this exact budget stamp.
        let mut tiny = VerifierConfig::default();
        tiny.govern.sbif_conflicts = Some(1);
        tiny.govern.rewrite_terms = Some(1);
        let cold =
            verify_cached(&div, tiny, Some(&cache), Recorder::new()).unwrap();
        assert_eq!(cold.verdict, "inconclusive", "{:?}", cold.exhausted_at);
        assert!(!cold.correct && cold.stored);
        let exhausted = cold.exhausted_at.as_deref().unwrap();
        assert!(exhausted.contains("exhausted"), "{exhausted}");

        // Same budget: a hit, replaying the stored stub.
        let warm = verify_cached(&div, tiny, Some(&cache), Recorder::new()).unwrap();
        assert!(warm.cached && warm.verdict == "inconclusive");
        assert_eq!(warm.metrics_json, cold.metrics_json);

        // A different budget must be a miss: this one is ample, so the
        // same design now proves — and the Proven entry it stores is
        // budget-independent, hitting even for the tiny budget later.
        let mut ample = VerifierConfig::default();
        ample.govern.rewrite_terms = Some(1_000_000);
        let proven = verify_cached(&div, ample, Some(&cache), Recorder::new()).unwrap();
        assert!(!proven.cached && proven.correct, "{:?}", proven.verdict);
        let hit = verify_cached(&div, tiny, Some(&cache), Recorder::new()).unwrap();
        assert!(hit.cached && hit.correct, "a proof is a proof under any budget");
    }

    #[test]
    fn bind_recovers_stale_sockets_but_refuses_live_daemons() {
        let dir = std::env::temp_dir()
            .join(format!("sbif_serve_stale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("stale.sock");
        // Simulate a SIGKILLed daemon: bind a listener, then drop it
        // while keeping the file around (as a kill -9 would).
        let first = UnixListener::bind(&socket).unwrap();
        drop(first);
        assert!(socket.exists(), "dead daemon leaves its socket file");
        let opts = ServeOptions {
            socket: socket.clone(),
            cache_dir: None,
            default_jobs: 1,
            max_active: 4,
        };
        let server = Server::bind(&opts).expect("stale socket must be swept and rebound");
        // While that daemon is alive, a second bind must refuse.
        let err = Server::bind(&opts).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_cached_replays_the_stub_byte_for_byte() {
        let div = nonrestoring_divider(3);
        let cache = ResultCache::in_memory();
        let cold = verify_cached(
            &div,
            VerifierConfig::default(),
            Some(&cache),
            Recorder::new(),
        )
        .unwrap();
        assert!(cold.correct && !cold.cached && cold.stored);
        assert!(cold.metrics_json.contains("sbif-metrics-v1"));

        // Warm: same key even at a different jobs count; the stub is
        // the stored bytes, and nothing is recorded (nothing ran).
        let mut warm_cfg = VerifierConfig::default();
        warm_cfg.sbif.jobs = 4;
        let rec = Recorder::new();
        let warm = verify_cached(&div, warm_cfg, Some(&cache), rec.clone()).unwrap();
        assert!(warm.correct && warm.cached && !warm.stored);
        assert_eq!(warm.metrics_json, cold.metrics_json);
        assert_eq!(rec.finish().counters.len(), 0);
    }

    #[test]
    fn load_divider_parses_and_coi_restricts_every_format() {
        use sbif_netlist::io::{write_bnet, Format};
        let div = nonrestoring_divider(3);
        let bnet = write_bnet(&div.netlist);
        let loaded = load_divider(&bnet, Format::Bnet).unwrap();
        assert_eq!(loaded.n, 3);
        let aag = sbif_netlist::aiger::write_aag(&div.netlist);
        assert_eq!(load_divider(&aag, Format::Aag).unwrap().n, 3);
        let bench = sbif_netlist::bench::write_bench(&div.netlist);
        assert_eq!(load_divider(&bench, Format::Bench).unwrap().n, 3);
        // Broken input surfaces as a message, not a panic.
        assert!(load_divider("aag x", Format::Aag).unwrap_err().contains("line 1"));
    }

    #[test]
    fn daemon_answers_ping_verify_stats_and_shuts_down() {
        let socket = std::env::temp_dir()
            .join(format!("sbif_serve_unit_{}.sock", std::process::id()));
        let server = Server::bind(&ServeOptions {
            socket: socket.clone(),
            cache_dir: None,
            default_jobs: 1,
            max_active: 4,
        })
        .unwrap();
        let daemon = std::thread::spawn(move || server.run());

        let stream = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut ask = |req: &str, reader: &mut BufReader<UnixStream>| -> Vec<String> {
            writeln!(w, "{req}").unwrap();
            w.flush().unwrap();
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let done = !line.contains("\"ev\": \"accepted\"")
                    && !line.contains("\"ev\": \"trace\"");
                lines.push(line.trim_end().to_string());
                if done {
                    return lines;
                }
            }
        };

        assert_eq!(ask("{\"op\": \"ping\"}", &mut reader), ["{\"ev\": \"pong\"}"]);
        let run1 = ask("{\"op\": \"verify\", \"id\": 7, \"demo\": 3}", &mut reader);
        assert_eq!(run1[0], "{\"job\": 7, \"ev\": \"accepted\"}");
        assert!(run1[1].contains("\"verdict\": \"correct\"") && run1[1].contains("\"cached\": false"));
        let run2 = ask("{\"op\": \"verify\", \"id\": 8, \"demo\": 3}", &mut reader);
        assert!(run2[1].contains("\"cached\": true"), "{run2:?}");
        let stats = ask("{\"op\": \"stats\"}", &mut reader);
        assert!(stats[0].contains("\"serve.jobs\": 2") && stats[0].contains("\"cache.hits\": 1"));
        let bye = ask("{\"op\": \"shutdown\"}", &mut reader);
        assert_eq!(bye, ["{\"ev\": \"bye\"}"]);

        let report = daemon.join().unwrap();
        assert_eq!(report.counter("serve.jobs"), 2);
        assert_eq!(report.counter("cache.hits"), 1);
        assert_eq!(report.counter("cache.misses"), 1);
        assert!(!socket.exists(), "socket file must be removed on shutdown");
    }
}
