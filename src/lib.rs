//! # SBIF — fully automatic divider verification
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *"Symbolic Computer Algebra and SAT Based Information Forwarding for
//! Fully Automatic Divider Verification"* (Scholl & Konrad, DAC 2020).
//!
//! See the individual crates for the subsystems:
//!
//! * [`analysis`] — the deterministic static-analysis framework
//!   (ternary propagation, structural hashing, cone slicing, shadow
//!   signatures) that prefilters SBIF's SAT work, see DESIGN.md §14,
//! * [`apint`] — arbitrary-precision signed integers,
//! * [`cache`] — the content-addressed verification result cache
//!   keyed by canonical cone digests (`--cache-dir`, DESIGN.md §15),
//! * [`poly`] — pseudo-Boolean polynomials,
//! * [`netlist`] — gate-level circuits and divider generators,
//! * [`sat`] — a CDCL SAT solver with Tseitin encoding,
//! * [`bdd`] — an ROBDD package with dynamic reordering,
//! * [`core`] — SCA backward rewriting + SBIF + the full verifier,
//! * [`cec`] — the SAT-miter and SAT-sweeping baselines,
//! * [`check`] — independent DRAT proof checking (`--certify`) and the
//!   `sbif-lint` netlist static analyzer,
//! * [`fuzz`] — gate-level fault injection and the `sbif-fuzz`
//!   mutation-kill campaign runner,
//! * [`trace`] — structured events, deterministic counters/gauges and
//!   the snapshot-tested metrics report (`--trace`, see DESIGN.md §12).
//!
//! # Examples
//!
//! Verify an 8-bit non-restoring divider end to end:
//!
//! ```
//! use sbif::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let divider = nonrestoring_divider(8);
//! let report = DividerVerifier::new(&divider).verify()?;
//! assert!(report.is_correct());
//! # Ok(())
//! # }
//! ```

pub mod serve;

pub use sbif_analysis as analysis;
pub use sbif_apint as apint;
pub use sbif_bdd as bdd;
pub use sbif_cache as cache;
pub use sbif_cec as cec;
pub use sbif_check as check;
pub use sbif_core as core;
pub use sbif_fuzz as fuzz;
pub use sbif_govern as govern;
pub use sbif_netlist as netlist;
pub use sbif_poly as poly;
pub use sbif_sat as sat;
pub use sbif_trace as trace;

/// One-stop imports for the common verification flow.
pub mod prelude {
    pub use sbif_apint::Int;
    pub use sbif_core::prelude::*;
    pub use sbif_netlist::prelude::*;
    pub use sbif_poly::{Monomial, Poly, Var};
}
